package ippm

import (
	"net/netip"
	"testing"
	"time"

	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/packet"
	"reorder/internal/simnet"
)

func session(t *testing.T, sc simnet.Config, cfg SessionConfig) *Report {
	t.Helper()
	n := simnet.New(sc)
	recv := Attach(n.Hosts[0], n.Loop, cfg.Port)
	rep, err := RunSession(n.Probe(), n.ServerAddr(), recv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestCleanSession(t *testing.T) {
	rep := session(t, simnet.Config{Seed: 1, Server: host.FreeBSD4()}, SessionConfig{Count: 50})
	if rep.Received != 50 {
		t.Fatalf("received %d/50", rep.Received)
	}
	if rep.Metrics.Reordered != 0 || rep.Metrics.Exchanges != 0 {
		t.Fatalf("clean path reordered: %v", rep.Metrics)
	}
	// One-way delay: 5ms propagation plus some serialization.
	if rep.Delay.Mean < 0.005 || rep.Delay.Mean > 0.007 {
		t.Fatalf("mean one-way delay = %v s", rep.Delay.Mean)
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestSessionSeesReordering(t *testing.T) {
	rep := session(t, simnet.Config{
		Seed: 2, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: 0.3},
	}, SessionConfig{Count: 200})
	if rep.Metrics.Reordered == 0 {
		t.Fatal("cooperative receiver missed the reordering")
	}
	rate := rep.Metrics.ExchangeRatio()
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("exchange ratio = %.3f, want ≈0.3", rate)
	}
}

func TestSessionCountsLoss(t *testing.T) {
	rep := session(t, simnet.Config{
		Seed: 3, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{Loss: 0.2},
	}, SessionConfig{Count: 200})
	if rep.Received >= 200 || rep.Received == 0 {
		t.Fatalf("received %d/200 under 20%% loss", rep.Received)
	}
	if rep.Metrics.Reordered != 0 {
		t.Fatal("loss misread as reordering")
	}
}

func TestSessionGapParameter(t *testing.T) {
	// The same gap-dependence the DCT sweep shows, measured cooperatively.
	trunkPath := func(gap time.Duration) float64 {
		rep := session(t, simnet.Config{
			Seed: 4, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{
				LinkRate: 1_000_000_000,
				Trunk: &netem.TrunkConfig{
					FanOut: 2, RateBps: 1_000_000_000,
					BurstProb: 0.2, MeanBurstBytes: 2500,
				},
			},
		}, SessionConfig{Count: 400, Gap: gap})
		return rep.Metrics.ExchangeRatio()
	}
	r0 := trunkPath(0)
	r300 := trunkPath(300 * time.Microsecond)
	if r0 < 0.05 {
		t.Fatalf("back-to-back rate = %.4f", r0)
	}
	if r300 > r0/3 {
		t.Fatalf("no decay: r0=%.4f r300=%.4f", r0, r300)
	}
}

func TestReceiverIgnoresGarbage(t *testing.T) {
	n := simnet.New(simnet.Config{Seed: 5, Server: host.FreeBSD4()})
	recv := Attach(n.Hosts[0], n.Loop, 0)

	mk := func(payload []byte) *packet.Packet {
		raw, err := packet.EncodeUDP(&packet.IPv4Header{
			Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
			Dst: netip.AddrFrom4([4]byte{10, 0, 1, 1}),
		}, &packet.UDPHeader{SrcPort: 1, DstPort: DefaultPort}, payload)
		if err != nil {
			t.Fatal(err)
		}
		p, err := packet.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	recv.Handle(mk([]byte{1, 2, 3}))                                        // too short
	recv.Handle(mk([]byte{0xde, 0xad, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0})) // wrong magic
	recv.Handle(mk([]byte{0x19, 0x90, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0})) // valid
	recv.Handle(mk([]byte{0x19, 0x90, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0, 0})) // duplicate seq 7
	if len(recv.arrivals) != 1 || recv.arrivals[0] != 7 {
		t.Fatalf("arrivals = %v, want [7]", recv.arrivals)
	}
}

func TestUnregisteredPortDropsSilently(t *testing.T) {
	// Without the cooperative receiver deployed, the session measures
	// nothing — the deployment burden the paper's techniques avoid.
	n := simnet.New(simnet.Config{Seed: 6, Server: host.FreeBSD4()})
	recv := NewReceiver(n.Loop) // NOT attached to the host
	rep, err := RunSession(n.Probe(), n.ServerAddr(), recv, SessionConfig{Count: 10, Drain: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received != 0 {
		t.Fatalf("received %d without a deployed receiver", rep.Received)
	}
}
