package netem

import (
	"reorder/internal/sim"
)

// Corrupter models a hop that damages bits in flight — line noise, a bad
// optic, a flaky switch port. With the configured probability it flips one
// random bit of the datagram; receivers then discard the segment at
// checksum validation, exactly as a real NIC or stack would, so on the
// measurement techniques corruption manifests as loss.
//
// A corrupted datagram has no truthful decoded view, so this is the
// canonical byte-mutating element: it materializes the frame's wire bytes,
// copies them (frames are immutable — captures upstream may already share
// the original bytes), damages the copy and forwards it as a new byte-form
// frame under the same frame ID.
type Corrupter struct {
	next  Node
	rng   *sim.Rand
	p     float64
	arena *Arena
	stats Counters
}

// NewCorrupter returns a corrupting hop feeding next. Damaged copies are
// allocated from arena (nil falls back to the heap).
func NewCorrupter(p float64, rng *sim.Rand, arena *Arena, next Node) *Corrupter {
	return &Corrupter{next: next, rng: rng, p: p, arena: arena}
}

// Reinit reconfigures a pooled element exactly as NewCorrupter would.
func (c *Corrupter) Reinit(p float64, rng *sim.Rand, arena *Arena, next Node) {
	c.next, c.rng, c.p, c.arena = next, rng, p, arena
	c.stats = Counters{}
}

// Stats returns a snapshot of the element's counters. Swapped counts frames
// forwarded with damage.
func (c *Corrupter) Stats() Counters { return c.stats }

// SetProb retargets the corruption probability mid-flow, the
// scenario-timeline hook for corruption storms. At or below zero the
// element draws no randomness.
func (c *Corrupter) SetProb(p float64) { c.p = p }

// Input implements Node.
func (c *Corrupter) Input(f *Frame) {
	c.stats.In++
	if !c.rng.Bool(c.p) {
		c.stats.Out++
		c.next.Input(f)
		return
	}
	data := f.Materialize()
	if len(data) == 0 {
		c.stats.Dropped++
		return
	}
	buf := append(c.arena.Alloc(len(data)), data...)
	bit := c.rng.IntN(len(buf) * 8)
	buf[bit>>3] ^= 1 << (bit & 7)
	c.stats.Out++
	c.stats.Swapped++
	c.next.Input(c.arena.NewFrame(f.ID, buf, f.Born))
}
