package netem

import (
	"sort"

	"reorder/internal/sim"
)

// ScheduleStep is one timed mutation: at virtual time At, call Do(Arg).
// Steps are data, not events — a Schedule holds exactly one pending loop
// timer however many steps remain, so a dense timeline costs the event
// heap nothing until each step comes due.
type ScheduleStep struct {
	At  sim.Time
	Do  func(any)
	Arg any
}

// Schedule drives a declarative scenario timeline: an ordered list of
// (atSimTime, mutation) steps applied by sim.Loop timers while traffic is
// in flight. It is the engine behind simnet's fault schedules — route
// flaps, oscillating rate/queue throttles, loss and corruption bursts with
// hard start/stop edges — but it knows nothing about network elements:
// steps are opaque callbacks, so anything retargetable mid-flow can ride
// it. A Schedule draws no randomness; given the same steps it perturbs a
// deterministic simulation deterministically.
type Schedule struct {
	loop    *sim.Loop
	steps   []ScheduleStep
	idx     int
	applied uint64

	timer sim.Timer
	runFn func(any)
}

// NewSchedule returns an empty schedule on loop. Add steps, then Start.
func NewSchedule(loop *sim.Loop) *Schedule {
	s := &Schedule{loop: loop}
	s.runFn = s.run
	return s
}

// Reinit clears a pooled schedule for reuse exactly as NewSchedule would,
// retaining the step storage and the cached timer callback. The loop must
// be the one the schedule was built on (pools are per-scenario); any timer
// pending from a previous run died with that loop's Reset.
func (s *Schedule) Reinit(loop *sim.Loop) {
	s.loop = loop
	s.steps = s.steps[:0]
	s.idx = 0
	s.applied = 0
	s.timer = sim.Timer{}
}

// Add appends a step. Steps may be added in any order; Start sorts them.
func (s *Schedule) Add(at sim.Time, do func(any), arg any) {
	s.steps = append(s.steps, ScheduleStep{At: at, Do: do, Arg: arg})
}

// Len returns the number of steps on the timeline.
func (s *Schedule) Len() int { return len(s.steps) }

// Applied returns how many steps have fired so far.
func (s *Schedule) Applied() uint64 { return s.applied }

// Start orders the timeline and arms the first timer. Steps with equal At
// keep their Add order (stable sort) and fire in that order within one
// timer callback. Call once per build, after every Add.
func (s *Schedule) Start() {
	if len(s.steps) == 0 {
		return
	}
	sort.SliceStable(s.steps, func(i, j int) bool { return s.steps[i].At < s.steps[j].At })
	s.arm()
}

// arm schedules the run callback for the next pending step, clamping
// past-due steps to now. RescheduleArg revives the previous firing's heap
// entry, so a long timeline costs one live event, reused.
func (s *Schedule) arm() {
	at := s.steps[s.idx].At
	if now := s.loop.Now(); at < now {
		at = now
	}
	s.timer = s.loop.RescheduleArg(s.timer, at, s.runFn, nil)
}

// run applies every step due at (or before) the current virtual time, then
// re-arms for the next one.
func (s *Schedule) run(any) {
	now := s.loop.Now()
	for s.idx < len(s.steps) && s.steps[s.idx].At <= now {
		st := &s.steps[s.idx]
		s.idx++
		s.applied++
		st.Do(st.Arg)
	}
	if s.idx < len(s.steps) {
		s.arm()
	}
}
