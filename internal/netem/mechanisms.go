package netem

import (
	"time"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// This file models the other reordering mechanisms the paper's conclusion
// enumerates beyond striped trunks: per-packet multi-path routing, layer-2
// retransmission across lossy (wireless) links, and DiffServ-style
// priority scheduling. Each produces a distinct time-domain signature,
// which the mechanisms experiment (E8) measures with the gap-parameterized
// dual connection test.

// MultiPathConfig describes per-packet spraying over unequal paths.
type MultiPathConfig struct {
	// Delays are the one-way delays of the member paths; packets are
	// sprayed round-robin across them. Reordering occurs when the delay
	// difference between consecutive members exceeds the packet gap.
	Delays []time.Duration
	// Jitter adds a uniform draw in [0, Jitter) per packet per path.
	Jitter time.Duration
}

// MultiPath sprays packets per-packet across paths of different latency —
// the "multi-path routing" cause. Unlike the striped trunk there is no
// per-member queue coupling; the signature is a step: pairs closer
// together than the member delay spread reorder with fixed probability,
// pairs farther apart never do.
type MultiPath struct {
	cfg   MultiPathConfig
	loop  *sim.Loop
	next  Node
	rng   *sim.Rand
	nextM int
	// lastArrival enforces per-member FIFO.
	lastArrival []sim.Time
	stats       Counters
	deliverFn   func(any)
}

// NewMultiPath returns a sprayer feeding next.
func NewMultiPath(loop *sim.Loop, cfg MultiPathConfig, rng *sim.Rand, next Node) *MultiPath {
	if len(cfg.Delays) == 0 {
		cfg.Delays = []time.Duration{time.Millisecond, time.Millisecond + 100*time.Microsecond}
	}
	m := &MultiPath{
		cfg: cfg, loop: loop, next: next, rng: rng,
		lastArrival: make([]sim.Time, len(cfg.Delays)),
	}
	m.deliverFn = func(arg any) {
		m.stats.Out++
		m.next.Input(arg.(*Frame))
	}
	return m
}

// Reinit reconfigures a pooled sprayer exactly as NewMultiPath would,
// reusing the struct, its cached callback and its per-member state slice.
func (m *MultiPath) Reinit(cfg MultiPathConfig, rng *sim.Rand, next Node) {
	if len(cfg.Delays) == 0 {
		cfg.Delays = []time.Duration{time.Millisecond, time.Millisecond + 100*time.Microsecond}
	}
	m.cfg, m.rng, m.next = cfg, rng, next
	m.stats = Counters{}
	m.nextM = 0
	m.lastArrival = resetTimes(m.lastArrival, len(cfg.Delays))
}

// Stats returns a snapshot of the element's counters.
func (m *MultiPath) Stats() Counters { return m.stats }

// Input implements Node.
func (m *MultiPath) Input(f *Frame) {
	m.stats.In++
	i := m.nextM
	m.nextM = (m.nextM + 1) % len(m.cfg.Delays)
	d := m.cfg.Delays[i]
	if m.cfg.Jitter > 0 {
		d += time.Duration(m.rng.Float64() * float64(m.cfg.Jitter))
	}
	at := m.loop.Now().Add(d)
	if at < m.lastArrival[i] {
		at = m.lastArrival[i] // FIFO within a member path
	}
	m.lastArrival[i] = at
	m.loop.AtArg(at, m.deliverFn, f)
}

// ARQConfig describes a layer-2 link with retransmission, e.g. 802.11.
type ARQConfig struct {
	// FrameErrorRate is the probability a frame needs retransmission.
	FrameErrorRate float64
	// RetransmitDelay is the per-attempt recovery latency (timeout plus
	// retransmission).
	RetransmitDelay time.Duration
	// MaxRetries bounds attempts; a frame exceeding it is dropped.
	MaxRetries int
	// InOrder, when set, makes the link hold subsequent frames behind a
	// frame under recovery (802.11-style strict order): no reordering,
	// only delay. When false the link delivers out of order — the
	// behaviour the paper's "layer 2 retransmission" cause refers to.
	InOrder bool
}

func (c *ARQConfig) setDefaults() {
	if c.RetransmitDelay == 0 {
		c.RetransmitDelay = 2 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
}

// ARQLink models link-layer recovery. Its reordering signature is a long
// flat tail: a corrupted frame falls one full RetransmitDelay behind,
// overtaken by any frame sent within that window — orders of magnitude
// longer than queue-imbalance reordering.
type ARQLink struct {
	cfg   ARQConfig
	loop  *sim.Loop
	next  Node
	rng   *sim.Rand
	stats Counters
	// release is when the last frame (in send order) will be delivered,
	// used for the InOrder variant.
	release   sim.Time
	deliverFn func(any)
}

// NewARQLink returns an ARQ link feeding next.
func NewARQLink(loop *sim.Loop, cfg ARQConfig, rng *sim.Rand, next Node) *ARQLink {
	cfg.setDefaults()
	l := &ARQLink{cfg: cfg, loop: loop, next: next, rng: rng}
	l.deliverFn = func(arg any) {
		l.stats.Out++
		l.next.Input(arg.(*Frame))
	}
	return l
}

// Reinit reconfigures a pooled ARQ link exactly as NewARQLink would,
// reusing the struct and its cached callback.
func (l *ARQLink) Reinit(cfg ARQConfig, rng *sim.Rand, next Node) {
	cfg.setDefaults()
	l.cfg, l.rng, l.next = cfg, rng, next
	l.stats = Counters{}
	l.release = 0
}

// Stats returns a snapshot of the element's counters. Swapped counts
// frames delivered after retransmission recovery.
func (l *ARQLink) Stats() Counters { return l.stats }

// Input implements Node.
func (l *ARQLink) Input(f *Frame) {
	l.stats.In++
	delay := time.Duration(0)
	attempts := 0
	for l.rng.Bool(l.cfg.FrameErrorRate) {
		attempts++
		if attempts > l.cfg.MaxRetries {
			l.stats.Dropped++
			return
		}
		delay += l.cfg.RetransmitDelay
	}
	if attempts > 0 {
		l.stats.Swapped++
	}
	at := l.loop.Now().Add(delay)
	if l.cfg.InOrder && at < l.release {
		at = l.release
	}
	if l.cfg.InOrder {
		l.release = at
	}
	l.loop.AtArg(at, l.deliverFn, f)
}

// PriorityConfig describes a two-class strict-priority scheduler keyed on
// the IP TOS/DSCP field.
type PriorityConfig struct {
	// HighTOSMask selects the high-priority class: packets whose TOS has
	// any masked bit set are expedited (default 0x10, a classic
	// low-delay TOS bit).
	HighTOSMask uint8
	// RateBps is the output line rate (default 100 Mbps).
	RateBps int64
}

// PriorityQueue is a DiffServ-style strict-priority transmitter: a later
// high-priority packet departs before queued low-priority packets. It
// reorders across classes only — a single-class flow passes in order,
// which is why DiffServ reordering bites flows whose packets carry mixed
// markings.
type PriorityQueue struct {
	cfg   PriorityConfig
	loop  *sim.Loop
	next  Node
	stats Counters

	busyUntil sim.Time
	// high and low are head-indexed queues so steady-state pops reuse the
	// backing arrays instead of reslicing them away from reuse.
	high, low         []*Frame
	highHead, lowHead int
	deliverFn         func(any)
}

// NewPriorityQueue returns a scheduler feeding next.
func NewPriorityQueue(loop *sim.Loop, cfg PriorityConfig, next Node) *PriorityQueue {
	if cfg.HighTOSMask == 0 {
		cfg.HighTOSMask = 0x10
	}
	if cfg.RateBps == 0 {
		cfg.RateBps = 100_000_000
	}
	q := &PriorityQueue{cfg: cfg, loop: loop, next: next}
	q.deliverFn = func(arg any) {
		q.stats.Out++
		q.next.Input(arg.(*Frame))
		q.kick()
	}
	return q
}

// Reinit reconfigures a pooled scheduler exactly as NewPriorityQueue
// would, reusing the struct, its cached callback and its queue storage.
func (q *PriorityQueue) Reinit(cfg PriorityConfig, next Node) {
	if cfg.HighTOSMask == 0 {
		cfg.HighTOSMask = 0x10
	}
	if cfg.RateBps == 0 {
		cfg.RateBps = 100_000_000
	}
	q.cfg, q.next = cfg, next
	q.stats = Counters{}
	q.busyUntil = 0
	q.high, q.low = q.high[:0], q.low[:0]
	q.highHead, q.lowHead = 0, 0
}

// Stats returns a snapshot of the element's counters.
func (q *PriorityQueue) Stats() Counters { return q.stats }

// Input implements Node.
func (q *PriorityQueue) Input(f *Frame) {
	q.stats.In++
	if tosOf(f)&q.cfg.HighTOSMask != 0 {
		q.high = append(q.high, f)
	} else {
		q.low = append(q.low, f)
	}
	q.kick()
}

// tosOf reads the TOS byte without full decoding: straight off the view
// when one is attached, else from the validated wire header.
func tosOf(f *Frame) uint8 {
	if v := f.View(); v != nil {
		return v.IP.TOS
	}
	if _, ok := packet.PeekFlow(f.Data); !ok {
		return 0
	}
	return f.Data[1]
}

// kick starts transmission if the line is idle.
func (q *PriorityQueue) kick() {
	now := q.loop.Now()
	if q.busyUntil > now {
		return // the completion event will re-kick
	}
	var f *Frame
	switch {
	case q.highHead < len(q.high):
		f = q.high[q.highHead]
		q.high[q.highHead] = nil
		q.highHead++
		if q.highHead == len(q.high) {
			q.high, q.highHead = q.high[:0], 0
		}
	case q.lowHead < len(q.low):
		f = q.low[q.lowHead]
		q.low[q.lowHead] = nil
		q.lowHead++
		if q.lowHead == len(q.low) {
			q.low, q.lowHead = q.low[:0], 0
		}
	default:
		return
	}
	tx := time.Duration(int64(f.Len()) * 8 * int64(time.Second) / q.cfg.RateBps)
	q.busyUntil = now.Add(tx)
	q.loop.AtArg(q.busyUntil, q.deliverFn, f)
}
