package netem

import (
	"reorder/internal/sim"
)

const (
	arenaFrameBlock = 512       // frames per block
	arenaViewBlock  = 512       // frame views per block
	arenaByteBlock  = 128 << 10 // bytes per slab
)

// Arena is a bump allocator for the two object kinds the packet fast path
// churns through: Frames and the datagram bytes they carry. Blocks are
// retained across Reset, so a reused scenario reaches a steady state where
// transmitting a datagram allocates nothing.
//
// Lifetime contract: everything an Arena hands out is valid until the next
// Reset. Scenario owners (internal/simnet) reset the arena only when the
// whole scenario is torn down and rebuilt, at which point no frame or
// capture from the previous run is reachable.
//
// A nil *Arena is valid and falls back to the garbage collector, so network
// elements and stacks work unchanged outside arena-managed scenarios.
type Arena struct {
	frameBlocks [][]Frame
	frameBlock  int // index of the block being filled
	frameUsed   int // frames used in that block

	viewBlocks [][]FrameView
	viewBlock  int
	viewUsed   int

	byteBlocks [][]byte
	byteBlock  int
	byteUsed   int

	materialized uint64 // lazy wire-byte encodes since the last Reset
}

// Materialized returns how many frames materialized wire bytes from their
// view since the last Reset — the count of times the zero-copy fast path
// had to fall back to encoding octets.
func (a *Arena) Materialized() uint64 {
	if a == nil {
		return 0
	}
	return a.materialized
}

// NewFrame returns a frame initialized with the given fields, allocated
// from the arena (or the heap when a is nil). The data slice is stored as
// given; use CopyBytes first if the caller reuses its buffer.
func (a *Arena) NewFrame(id uint64, data []byte, born sim.Time) *Frame {
	if a == nil {
		return &Frame{ID: id, Data: data, Born: born}
	}
	if a.frameBlock >= len(a.frameBlocks) {
		a.frameBlocks = append(a.frameBlocks, make([]Frame, arenaFrameBlock))
	}
	block := a.frameBlocks[a.frameBlock]
	f := &block[a.frameUsed]
	a.frameUsed++
	if a.frameUsed == len(block) {
		a.frameBlock++
		a.frameUsed = 0
	}
	f.ID, f.Data, f.Born = id, data, born
	f.view, f.arena = nil, a
	return f
}

// newView returns a zero-initialized-enough view cell; the builders in
// view.go overwrite every field a consumer may read.
func (a *Arena) newView() *FrameView {
	if a == nil {
		return &FrameView{}
	}
	if a.viewBlock >= len(a.viewBlocks) {
		a.viewBlocks = append(a.viewBlocks, make([]FrameView, arenaViewBlock))
	}
	block := a.viewBlocks[a.viewBlock]
	v := &block[a.viewUsed]
	a.viewUsed++
	if a.viewUsed == len(block) {
		a.viewBlock++
		a.viewUsed = 0
	}
	return v
}

// Alloc returns an empty arena-owned byte slice with capacity n, for
// callers that encode directly into arena storage (Frame.Materialize).
func (a *Arena) Alloc(n int) []byte {
	if a == nil {
		return make([]byte, 0, n)
	}
	if a.byteBlock >= len(a.byteBlocks) || a.byteUsed+n > len(a.byteBlocks[a.byteBlock]) {
		a.nextByteBlock(n)
	}
	block := a.byteBlocks[a.byteBlock]
	c := block[a.byteUsed : a.byteUsed : a.byteUsed+n]
	a.byteUsed += n
	return c
}

// CopyBytes copies b into arena-owned storage and returns the copy. The
// caller may immediately reuse b; the copy lives until Reset.
func (a *Arena) CopyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append(a.Alloc(len(b)), b...)
}

// nextByteBlock advances to a block with at least n free bytes, reusing
// retained blocks and allocating (oversized if needed) otherwise.
func (a *Arena) nextByteBlock(n int) {
	if a.byteBlock < len(a.byteBlocks) {
		a.byteBlock++
	}
	for a.byteBlock < len(a.byteBlocks) {
		if n <= len(a.byteBlocks[a.byteBlock]) {
			a.byteUsed = 0
			return
		}
		a.byteBlock++ // retained block too small for this datagram
	}
	size := arenaByteBlock
	if n > size {
		size = n
	}
	a.byteBlocks = append(a.byteBlocks, make([]byte, size))
	a.byteBlock = len(a.byteBlocks) - 1
	a.byteUsed = 0
}

// Reset rewinds the arena, keeping every block for reuse. All frames and
// byte slices previously handed out become invalid.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.frameBlock, a.frameUsed = 0, 0
	a.viewBlock, a.viewUsed = 0, 0
	a.byteBlock, a.byteUsed = 0, 0
	a.materialized = 0
}
