package netem

import (
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// MiddleboxConfig selects which adversarial behaviors a Middlebox applies
// to TCP traffic crossing it. Probabilities at or below zero disable the
// behavior and draw no randomness, so an all-zero config is rng-inert and
// forwards every frame untouched.
type MiddleboxConfig struct {
	// RSTProb / FINProb inject a forged RST (resp. FIN|ACK) continuing the
	// flow immediately after forwarding a data segment, as connection-reset
	// appliances and some stateful firewalls do.
	RSTProb float64
	FINProb float64
	// HoleProb silently discards a data segment, opening a sequence hole
	// the endpoints must repair — the mid-path analogue of policer drops.
	HoleProb float64
	// TTLClamp, when nonzero, rewrites any larger TTL down to it.
	TTLClamp uint8
	// WindowClamp, when nonzero, rewrites any larger receive window down to
	// it (WAN-accelerator / rate-shaper behavior).
	WindowClamp uint16
	// RewriteTOS overwrites the IP TOS byte with TOS (DSCP bleaching).
	RewriteTOS bool
	TOS        uint8
	// Inactive builds the element dormant; a scenario timeline flips it on
	// mid-flow via SetActive for hard start/stop edges.
	Inactive bool
}

// MiddleboxStats counts the adversarial actions a Middlebox performed, on
// top of the In/Out/Dropped frame accounting in Counters.
type MiddleboxStats struct {
	Injected  uint64 // forged RST/FIN segments originated
	Holes     uint64 // data segments swallowed
	Rewritten uint64 // segments forwarded with rewritten headers
}

// Middlebox models an adversarial in-path appliance in the DPI position:
// it decodes TCP traffic and injects behavior the paper's measurement
// techniques were never validated against — spurious RST/FIN, sequence
// holes, TTL clamping, header rewriting. Non-TCP, fragmented, and
// undecodable frames pass through untouched (and draw no randomness), so
// the element composes with fragmenting and corrupting hops in either
// frame form: a frame that decodes from its view decodes identically from
// its materialized bytes, keeping view/byte differential runs in lockstep.
type Middlebox struct {
	loop   *sim.Loop
	next   Node
	rng    *sim.Rand
	arena  *Arena
	ids    *FrameIDs
	cfg    MiddleboxConfig
	active bool
	stats  Counters
	mb     MiddleboxStats

	scratch packet.Packet
}

// NewMiddlebox returns an adversarial hop feeding next. Injected and
// rewritten frames are allocated from arena and numbered from ids, the
// network's shared frame-ID space, so ground-truth traces stay unique.
func NewMiddlebox(cfg MiddleboxConfig, loop *sim.Loop, rng *sim.Rand, arena *Arena, ids *FrameIDs, next Node) *Middlebox {
	m := &Middlebox{}
	m.Reinit(cfg, loop, rng, arena, ids, next)
	return m
}

// Reinit reconfigures a pooled element exactly as NewMiddlebox would,
// retaining the decode scratch storage.
func (m *Middlebox) Reinit(cfg MiddleboxConfig, loop *sim.Loop, rng *sim.Rand, arena *Arena, ids *FrameIDs, next Node) {
	m.loop, m.next, m.rng, m.arena, m.ids = loop, next, rng, arena, ids
	m.cfg = cfg
	m.active = !cfg.Inactive
	m.stats = Counters{}
	m.mb = MiddleboxStats{}
}

// SetActive flips the element's hard on/off edge; while inactive every
// frame passes through untouched and no randomness is drawn.
func (m *Middlebox) SetActive(on bool) { m.active = on }

// Active reports whether the element is currently applying behavior.
func (m *Middlebox) Active() bool { return m.active }

// Stats returns a snapshot of the element's frame counters.
func (m *Middlebox) Stats() Counters { return m.stats }

// MiddleboxStats returns a snapshot of the adversarial-action counters.
func (m *Middlebox) MiddleboxStats() MiddleboxStats { return m.mb }

// Input implements Node.
func (m *Middlebox) Input(f *Frame) {
	m.stats.In++
	if !m.active {
		m.stats.Out++
		m.next.Input(f)
		return
	}
	p := &m.scratch
	if !m.decode(f, p) || p.TCP == nil {
		m.stats.Out++
		m.next.Input(f)
		return
	}
	tcp := p.TCP
	// Data segments are the ones worth attacking: control segments (SYN,
	// RST, FIN) are left alone so handshakes still complete and the
	// injected teardown below stays unambiguous in traces.
	isData := len(p.Payload) > 0 && tcp.Flags&(packet.FlagSYN|packet.FlagRST|packet.FlagFIN) == 0
	if isData && m.rng.Bool(m.cfg.HoleProb) {
		m.stats.Dropped++
		m.mb.Holes++
		return
	}
	ip := p.IP
	hdr := *tcp
	rewritten := false
	if m.cfg.TTLClamp > 0 && ip.TTL > m.cfg.TTLClamp {
		ip.TTL = m.cfg.TTLClamp
		rewritten = true
	}
	if m.cfg.WindowClamp > 0 && hdr.Window > m.cfg.WindowClamp {
		hdr.Window = m.cfg.WindowClamp
		rewritten = true
	}
	if m.cfg.RewriteTOS && ip.TOS != m.cfg.TOS {
		ip.TOS = m.cfg.TOS
		rewritten = true
	}
	out := f
	if rewritten {
		ip.Checksum, hdr.Checksum = 0, 0
		if nf, err := m.arena.NewTCPFrame(f.ID, f.Born, &ip, &hdr, p.Payload); err == nil {
			out = nf
			m.mb.Rewritten++
		}
	}
	m.stats.Out++
	m.next.Input(out)
	if isData {
		if m.rng.Bool(m.cfg.RSTProb) {
			m.inject(p, packet.FlagRST|packet.FlagACK)
		} else if m.rng.Bool(m.cfg.FINProb) {
			m.inject(p, packet.FlagFIN|packet.FlagACK)
		}
	}
}

// decode fills p from the frame, preferring the already-parsed view and
// falling back to a checksum-verified wire decode. It reports false for
// frames the middlebox must not touch: non-IP payloads, fragments, and
// anything that fails validation — a frame's view and its materialized
// bytes always decode to the same answer, so the decision is form-blind.
func (m *Middlebox) decode(f *Frame, p *packet.Packet) bool {
	if v := f.View(); v != nil {
		v.ToPacket(p)
	} else {
		if len(f.Data) == 0 || packet.DecodeInto(p, f.Data) != nil {
			return false
		}
	}
	if p.IP.FragOffset != 0 || p.IP.Flags&packet.FlagMF != 0 {
		return false
	}
	return true
}

// inject originates a forged teardown segment continuing the flow of the
// data packet just forwarded: same four-tuple and direction, sequence
// number advanced past the payload so the receiver accepts it in-window.
func (m *Middlebox) inject(p *packet.Packet, flags uint8) {
	ip := packet.IPv4Header{
		Src: p.IP.Src,
		Dst: p.IP.Dst,
		ID:  p.IP.ID ^ 0x5a5a,
		TTL: p.IP.TTL,
	}
	tcp := packet.TCPHeader{
		SrcPort: p.TCP.SrcPort,
		DstPort: p.TCP.DstPort,
		Seq:     p.TCP.Seq + uint32(len(p.Payload)),
		Ack:     p.TCP.Ack,
		Flags:   flags,
		Window:  p.TCP.Window,
	}
	nf, err := m.arena.NewTCPFrame(m.ids.Next(), m.loop.Now(), &ip, &tcp, nil)
	if err != nil {
		return
	}
	m.mb.Injected++
	m.next.Input(nf)
}
