package netem

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

var (
	viewSrc = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	viewDst = netip.AddrFrom4([4]byte{10, 0, 1, 1})
)

func tcpFrameArgs() (*packet.IPv4Header, *packet.TCPHeader, []byte) {
	ip := &packet.IPv4Header{Src: viewSrc, Dst: viewDst, ID: 777, TOS: 0x10, Flags: packet.FlagDF}
	tcp := &packet.TCPHeader{
		SrcPort: 40001, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: packet.FlagACK | packet.FlagPSH, Window: 4096,
		Options: []packet.TCPOption{
			packet.MSSOption(1460),
			packet.SACKPermittedOption(),
		},
	}
	return ip, tcp, []byte("hello wire")
}

// TestMaterializeMatchesAppendTCP pins the core view invariant: the bytes
// Materialize produces are exactly what the sender would have encoded
// eagerly, and the view's normalized headers are exactly what decoding
// those bytes yields (checksum fields excepted — views leave them zero).
func TestMaterializeMatchesAppendTCP(t *testing.T) {
	ip, tcp, payload := tcpFrameArgs()
	want, err := packet.AppendTCP(nil, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}

	var a *Arena // nil arena: heap fallback works identically
	f, err := a.NewTCPFrame(9, 0, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != len(want) {
		t.Fatalf("view frame Len = %d before materializing, want wire length %d", f.Len(), len(want))
	}
	if got := f.Materialize(); !bytes.Equal(got, want) {
		t.Fatalf("materialized bytes differ from eager encode:\n got %x\nwant %x", got, want)
	}

	dec, err := packet.Decode(f.Data)
	if err != nil {
		t.Fatal(err)
	}
	v := f.View()
	if v.IP.TotalLen != dec.IP.TotalLen || v.IP.TTL != dec.IP.TTL || v.IP.Protocol != dec.IP.Protocol {
		t.Fatalf("view IP normalization %+v differs from decoded %+v", v.IP, dec.IP)
	}
	if v.TCP.Seq != dec.TCP.Seq || v.TCP.Flags != dec.TCP.Flags || len(v.TCP.Options) != len(dec.TCP.Options) {
		t.Fatalf("view TCP %+v differs from decoded %+v", v.TCP, dec.TCP)
	}
	if mv, _ := v.TCP.MSS(); mv != 1460 || !v.TCP.SACKPermitted() {
		t.Fatal("view options lost in the deep copy")
	}
	if !bytes.Equal(v.Payload, dec.Payload) {
		t.Fatal("view payload differs from decoded payload")
	}
	wantFlow := dec.Flow()
	if v.Flow() != wantFlow {
		t.Fatalf("view flow key %v, want %v", v.Flow(), wantFlow)
	}
}

// TestViewToPacketMatchesDecode checks the receiver-side shortcut: copying
// a view into a scratch packet must agree field-for-field with DecodeInto
// over the materialized bytes.
func TestViewToPacketMatchesDecode(t *testing.T) {
	ip, tcp, payload := tcpFrameArgs()
	a := &Arena{}
	f, err := a.NewTCPFrame(3, 0, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	var fromView, fromWire packet.Packet
	f.View().ToPacket(&fromView)
	if err := packet.DecodeInto(&fromWire, f.Materialize()); err != nil {
		t.Fatal(err)
	}
	fromWire.TCP.Checksum = 0 // views do not carry checksums
	fromWire.IP.Checksum = 0
	if fromView.IP != fromWire.IP {
		t.Fatalf("IP headers differ:\nview %+v\nwire %+v", fromView.IP, fromWire.IP)
	}
	if fromView.TCP.Seq != fromWire.TCP.Seq || fromView.TCP.Window != fromWire.TCP.Window ||
		len(fromView.TCP.Options) != len(fromWire.TCP.Options) {
		t.Fatalf("TCP headers differ:\nview %+v\nwire %+v", fromView.TCP, fromWire.TCP)
	}
	if !bytes.Equal(fromView.Payload, fromWire.Payload) {
		t.Fatal("payloads differ")
	}
	if fromView.WireLen != fromWire.WireLen {
		t.Fatalf("WireLen %d vs %d", fromView.WireLen, fromWire.WireLen)
	}
}

// TestPassThroughForwardZeroAlloc pins the decode-once promise at the
// element level: once the arena and heap are warm, pushing a view-built
// frame through the full pass-through chain — link, jitterless delay,
// loss, swapper, priority, load balancer — and delivering it to a sink
// allocates nothing and never materializes wire bytes.
func TestPassThroughForwardZeroAlloc(t *testing.T) {
	loop := sim.NewLoop()
	arena := &Arena{}
	var delivered *Frame
	sink := NodeFunc(func(f *Frame) { delivered = f })

	lb := NewLoadBalancer(HashFourTuple, sink)
	pq := NewPriorityQueue(loop, PriorityConfig{}, lb)
	sw := NewSwapper(loop, 0.3, sim.NewRand(5, 6), pq)
	lo := NewLoss(0.1, sim.NewRand(7, 8), sw)
	de := NewDelay(loop, time.Microsecond, 0, sim.NewRand(9, 10), lo)
	li := NewLink(loop, LinkConfig{RateBps: 100_000_000, PropDelay: time.Millisecond}, de)

	ip, tcp, payload := tcpFrameArgs()
	var ids FrameIDs
	push := func() {
		for i := 0; i < 16; i++ {
			f, err := arena.NewTCPFrame(ids.Next(), loop.Now(), ip, tcp, payload)
			if err != nil {
				t.Fatal(err)
			}
			li.Input(f)
		}
		loop.RunFor(50 * time.Millisecond)
	}
	push() // warm arena slabs, loop heap, element state
	arena.Reset()
	loop.Reset()
	if allocs := testing.AllocsPerRun(50, func() {
		push()
		arena.Reset()
		loop.Reset()
	}); allocs > 0 {
		t.Fatalf("pass-through forward path allocates %.1f objects per batch, want 0", allocs)
	}
	if delivered == nil {
		t.Fatal("no frame reached the sink")
	}
	if delivered.Data != nil {
		t.Fatal("pass-through chain materialized wire bytes")
	}
	if delivered.View() == nil {
		t.Fatal("delivered frame lost its view")
	}
}

// TestCorrupterMaterializesCopy checks the byte-mutating element's
// contract: the original frame's bytes (shared with captures) stay intact,
// the forwarded copy differs in exactly one bit, and pass-through frames
// are forwarded unmodified without materializing.
func TestCorrupterMaterializesCopy(t *testing.T) {
	arena := &Arena{}
	var out []*Frame
	c := NewCorrupter(1.0, sim.NewRand(1, 2), arena, NodeFunc(func(f *Frame) { out = append(out, f) }))

	ip, tcp, payload := tcpFrameArgs()
	f, err := arena.NewTCPFrame(1, 0, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := packet.AppendTCP(nil, ip, tcp, payload)
	c.Input(f)
	if len(out) != 1 {
		t.Fatalf("corrupter forwarded %d frames, want 1", len(out))
	}
	if !bytes.Equal(f.Data, want) {
		t.Fatal("corrupter mutated the original frame's bytes")
	}
	diff := 0
	for i := range want {
		diff += popcount8(out[0].Data[i] ^ want[i])
	}
	if diff != 1 {
		t.Fatalf("corrupted copy differs in %d bits, want exactly 1", diff)
	}
	if out[0].ID != f.ID || out[0].View() != nil {
		t.Fatal("corrupted copy must keep the frame ID and carry no view")
	}

	// Pass-through (probability 0): same frame, still unmaterialized.
	out = nil
	c.Reinit(0, sim.NewRand(3, 4), arena, NodeFunc(func(f *Frame) { out = append(out, f) }))
	g, err := arena.NewTCPFrame(2, 0, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	c.Input(g)
	if len(out) != 1 || out[0] != g || g.Data != nil {
		t.Fatal("pass-through corrupter must forward the identical frame without materializing")
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
