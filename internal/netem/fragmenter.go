package netem

import (
	"reorder/internal/packet"
)

// Fragmenter models a router forwarding onto a smaller-MTU link: frames
// over the MTU are split into IP fragments (sharing the original's frame
// ID for tracing purposes); DF-marked oversized frames are dropped, as a
// router without ICMP support would. Fragments traverse the rest of the
// path as independent packets — and can therefore be reordered among
// themselves, which is exactly the situation the IPID-keyed reassembly
// design (§III-A) exists to survive.
type Fragmenter struct {
	mtu   int
	next  Node
	stats Counters
}

// NewFragmenter returns a fragmenting hop feeding next.
func NewFragmenter(mtu int, next Node) *Fragmenter {
	return &Fragmenter{mtu: mtu, next: next}
}

// Reinit reconfigures a pooled hop exactly as NewFragmenter would.
func (fr *Fragmenter) Reinit(mtu int, next Node) {
	fr.mtu, fr.next = mtu, next
	fr.stats = Counters{}
}

// Stats returns a snapshot of the element's counters. Out counts emitted
// fragments (or intact frames).
func (fr *Fragmenter) Stats() Counters { return fr.stats }

// Input implements Node. Fragmenting needs real octets, so this is one of
// the few elements that materializes a view-built frame.
func (fr *Fragmenter) Input(f *Frame) {
	fr.stats.In++
	frags, err := packet.Fragment(f.Materialize(), fr.mtu)
	if err != nil {
		fr.stats.Dropped++ // DF over MTU, or garbage
		return
	}
	if len(frags) == 1 {
		fr.stats.Out++
		fr.next.Input(f)
		return
	}
	for _, fd := range frags {
		fr.stats.Out++
		fr.next.Input(&Frame{ID: f.ID, Data: fd, Born: f.Born})
	}
}
