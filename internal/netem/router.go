package netem

import (
	"net/netip"
)

// Router is a graph-topology forwarding node: frames are classified by
// destination address against a per-destination forwarding table and handed
// to one port of the matched route's port group. A port group models a set
// of parallel equal-cost egress interfaces (typically queue-limited Links
// sharing one far end); groups with more than one port spray frames
// per-packet round-robin across them — the load-balancing discipline that
// turns uneven queue occupancy into *emergent* reordering, exactly the
// "packet-level parallelism inside the network" cause the paper attributes
// field reordering to. The router itself schedules nothing and holds no
// queue: all queueing delay and droptail loss live in the Link elements
// behind its ports, so congestion effects are a product of traffic, not of
// a configured probability.
//
// The spray counter is shared per group across every flow routed through
// it, which is what makes two back-to-back probe packets take different
// physical links whenever any cross-traffic interleaves them.
type Router struct {
	stats  Counters
	routes []route
	groups [][]Node
	rr     []uint32
}

// route maps one destination address to a port-group index. Tables are tiny
// (one entry per endpoint), so a linear scan beats a map on the hot path.
type route struct {
	dst   netip.Addr
	group int
}

// NewRouter returns an empty router; frames drop until routes are added.
func NewRouter() *Router { return &Router{} }

// Reinit clears the forwarding table, port groups and counters for reuse in
// a rebuilt topology, retaining the table and group-list storage.
func (r *Router) Reinit() {
	r.stats = Counters{}
	r.routes = r.routes[:0]
	r.groups = r.groups[:0]
	r.rr = r.rr[:0]
}

// AddGroup registers a port group of parallel equal-cost egress ports and
// returns its index for AddRoute. Multi-port groups forward round-robin,
// starting at the first port.
func (r *Router) AddGroup(ports ...Node) int {
	if len(ports) == 0 {
		panic("netem: router port group needs at least one port")
	}
	r.groups = append(r.groups, ports)
	r.rr = append(r.rr, 0)
	return len(r.groups) - 1
}

// AddRoute directs frames for dst to the port group at index group. Later
// routes for the same destination shadow earlier ones only if added first;
// callers build tables once per topology, so duplicates are a spec bug.
func (r *Router) AddRoute(dst netip.Addr, group int) {
	if group < 0 || group >= len(r.groups) {
		panic("netem: router route references unknown port group")
	}
	r.routes = append(r.routes, route{dst: dst, group: group})
}

// SetRoute repoints the route for dst at a different port group — a route
// flap. An existing entry is updated in place (frames already queued on the
// old group's links still drain through them, exactly like a real
// forwarding-table swap); with no existing entry the route is appended.
func (r *Router) SetRoute(dst netip.Addr, group int) {
	if group < 0 || group >= len(r.groups) {
		panic("netem: router route references unknown port group")
	}
	for i := range r.routes {
		if r.routes[i].dst == dst {
			r.routes[i].group = group
			return
		}
	}
	r.routes = append(r.routes, route{dst: dst, group: group})
}

// Stats returns a snapshot of the router's counters. Dropped counts frames
// with no matching route (or no classifiable destination).
func (r *Router) Stats() Counters { return r.stats }

// Input implements Node. Classification uses the frame's cached flow key
// when a view is attached (no wire-byte materialization), falling back to a
// PeekFlow over the wire bytes.
func (r *Router) Input(f *Frame) {
	r.stats.In++
	k, ok := f.Flow()
	if !ok {
		r.stats.Dropped++
		return
	}
	for i := range r.routes {
		if r.routes[i].dst == k.Dst {
			g := r.routes[i].group
			ports := r.groups[g]
			port := ports[0]
			if len(ports) > 1 {
				port = ports[int(r.rr[g])%len(ports)]
				r.rr[g]++
			}
			r.stats.Out++
			port.Input(f)
			return
		}
	}
	r.stats.Dropped++ // no route to host
}
