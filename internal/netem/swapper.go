package netem

import (
	"time"

	"reorder/internal/sim"
)

// Swapper reimplements the paper's modified dummynet traffic shaper (§IV-A):
// with a configured probability it swaps a packet with the following one.
// When a frame is selected, it is held back; the next frame to arrive is
// forwarded first, then the held frame, producing exactly one adjacent
// exchange. A held frame with no successor is flushed after FlushAfter so
// lone packets are never stranded.
type Swapper struct {
	loop  *sim.Loop
	next  Node
	rng   *sim.Rand
	prob  func(sim.Time) float64 // nil: use the fixed probability
	fixed float64
	flush time.Duration
	stats Counters

	held       *Frame
	flushTimer sim.Timer
	flushFn    func(any)
}

// DefaultFlushAfter bounds how long a held packet waits for a successor.
const DefaultFlushAfter = 50 * time.Millisecond

// NewSwapper returns a swapper with fixed probability p feeding next.
func NewSwapper(loop *sim.Loop, p float64, rng *sim.Rand, next Node) *Swapper {
	s := NewSwapperFunc(loop, nil, rng, next)
	s.fixed = p
	return s
}

// NewSwapperFunc returns a swapper whose probability varies with virtual
// time, used to model paths whose reordering rate drifts (Fig 6). A nil
// prob means the fixed probability (zero until set).
func NewSwapperFunc(loop *sim.Loop, prob func(sim.Time) float64, rng *sim.Rand, next Node) *Swapper {
	s := &Swapper{loop: loop, next: next, rng: rng, prob: prob, flush: DefaultFlushAfter}
	s.flushFn = func(arg any) {
		f := arg.(*Frame)
		if s.held == f {
			s.held = nil
			s.stats.Out++
			s.next.Input(f)
		}
	}
	return s
}

// Reinit reconfigures a pooled swapper exactly as NewSwapper (prob == nil,
// fixed probability p) or NewSwapperFunc (prob != nil) would, reusing the
// struct and its cached flush callback.
func (s *Swapper) Reinit(prob func(sim.Time) float64, p float64, rng *sim.Rand, next Node) {
	s.next, s.rng, s.prob, s.fixed = next, rng, prob, p
	s.flush = DefaultFlushAfter
	s.stats = Counters{}
	s.held = nil
	s.flushTimer = sim.Timer{}
}

// probAt returns the swap probability in effect at time t.
func (s *Swapper) probAt(t sim.Time) float64 {
	if s.prob != nil {
		return s.prob(t)
	}
	return s.fixed
}

// SetFlushAfter overrides the hold timeout.
func (s *Swapper) SetFlushAfter(d time.Duration) { s.flush = d }

// SetProb retargets the fixed swap probability mid-flow and drops any
// time-varying probability function, the scenario-timeline hook for
// reordering bursts. At or below zero the element draws no randomness.
func (s *Swapper) SetProb(p float64) { s.prob, s.fixed = nil, p }

// Stats returns a snapshot of the swapper's counters. Swapped counts
// completed exchanges.
func (s *Swapper) Stats() Counters { return s.stats }

// Input implements Node.
func (s *Swapper) Input(f *Frame) {
	s.stats.In++
	if s.held != nil {
		// Forward the newcomer first, then the held frame: one adjacent swap.
		s.flushTimer.Stop()
		held := s.held
		s.held = nil
		s.stats.Out += 2
		s.stats.Swapped++
		s.next.Input(f)
		s.next.Input(held)
		return
	}
	if s.rng.Bool(s.probAt(s.loop.Now())) {
		s.held = f
		// RescheduleArg revives the stopped timer's heap entry from the
		// previous hold in place instead of pushing a replacement.
		s.flushTimer = s.loop.RescheduleArg(s.flushTimer, s.loop.Now().Add(s.flush), s.flushFn, f)
		return
	}
	s.stats.Out++
	s.next.Input(f)
}
