// Package netem models the network between the probe host and the remote
// hosts: links with serialization and propagation delay, droptail queues,
// per-packet striping across parallel links (the physical reordering
// mechanism §IV-C of the paper identifies), a dummynet-style adjacent-packet
// swapper (the paper's controlled-validation apparatus), random loss and
// jitter, and transparent per-flow load balancers.
//
// Frames flow through chains of Nodes on a shared discrete-event loop.
// Every element is deterministic given its sim.Rand stream.
package netem

import (
	"reorder/internal/sim"
)

// Frame is one IP datagram in flight, tagged with a network-unique ID so
// traces can establish ground-truth ordering independent of packet contents.
type Frame struct {
	ID   uint64
	Data []byte
	Born sim.Time // when the frame entered the network
}

// Len returns the frame's wire length in bytes.
func (f *Frame) Len() int { return len(f.Data) }

// A Node accepts frames. Network elements implement Node and forward frames
// (possibly delayed, reordered, or dropped) to a downstream Node.
type Node interface {
	Input(f *Frame)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(*Frame)

// Input implements Node.
func (fn NodeFunc) Input(f *Frame) { fn(f) }

// Discard is a Node that drops everything, useful as a default sink.
var Discard Node = NodeFunc(func(*Frame) {})

// FrameIDs allocates network-unique frame IDs.
type FrameIDs struct{ next uint64 }

// Next returns a fresh nonzero frame ID.
func (s *FrameIDs) Next() uint64 {
	s.next++
	return s.next
}

// Counters tracks what happened to frames at one element.
type Counters struct {
	In      uint64 // frames accepted
	Out     uint64 // frames forwarded downstream
	Dropped uint64 // frames discarded (queue overflow, loss)
	Swapped uint64 // adjacent exchanges performed (Swapper, StripedTrunk)
}

// Tap is a pass-through Node that invokes a callback for every frame before
// forwarding it, used by the trace package to capture ground truth at a
// point in the topology.
type Tap struct {
	next Node
	fn   func(*Frame, sim.Time)
	loop *sim.Loop
}

// NewTap returns a tap that calls fn(frame, now) and forwards to next.
func NewTap(loop *sim.Loop, next Node, fn func(*Frame, sim.Time)) *Tap {
	return &Tap{next: next, fn: fn, loop: loop}
}

// SetNext rewires the tap's downstream node, so scenario owners can pool
// taps across topology rebuilds (the capture callback and loop are fixed
// at construction).
func (t *Tap) SetNext(next Node) { t.next = next }

// Input implements Node.
func (t *Tap) Input(f *Frame) {
	if t.fn != nil {
		t.fn(f, t.loop.Now())
	}
	t.next.Input(f)
}
