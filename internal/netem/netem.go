// Package netem models the network between the probe host and the remote
// hosts: links with serialization and propagation delay, droptail queues,
// per-packet striping across parallel links (the physical reordering
// mechanism §IV-C of the paper identifies), a dummynet-style adjacent-packet
// swapper (the paper's controlled-validation apparatus), random loss and
// jitter, and transparent per-flow load balancers.
//
// Frames flow through chains of Nodes on a shared discrete-event loop.
// Every element is deterministic given its sim.Rand stream.
package netem

import (
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// Frame is one IP datagram in flight, tagged with a network-unique ID so
// traces can establish ground-truth ordering independent of packet contents.
//
// A frame carries its datagram in one or both of two forms: wire bytes
// (Data) and a decoded header view (View). Senders on the fast path build
// only the view — parsed headers plus payload, no encoding, no checksums —
// and the wire bytes are materialized lazily by the first element that
// actually needs octets (a fragmenting hop, a corrupting hop, a capture
// tap, a byte-oriented receiver). The two forms always agree: wire bytes
// are only ever produced from the view by Materialize, and both are
// immutable once attached — an element that wants to alter bytes must copy
// them into a new frame (see Corrupter). When wire bytes exist they are
// authoritative; receivers prefer the view only because it is the same
// datagram already decoded.
type Frame struct {
	ID   uint64
	Data []byte   // wire bytes; nil until materialized for view-built frames
	Born sim.Time // when the frame entered the network

	view  *FrameView
	arena *Arena // materialization allocator; nil falls back to the heap
}

// Len returns the frame's wire length in bytes, without materializing.
func (f *Frame) Len() int {
	if f.Data != nil {
		return len(f.Data)
	}
	if f.view != nil {
		return f.view.wireLen
	}
	return 0
}

// View returns the frame's decoded header view, or nil for frames that
// exist only as wire bytes (fragments, externally injected datagrams).
func (f *Frame) View() *FrameView { return f.view }

// Flow returns the frame's transport flow key without touching wire bytes
// when a view is present, else a PeekFlow over the wire bytes. ok is false
// only for byte-form frames too short to classify.
func (f *Frame) Flow() (packet.FlowKey, bool) {
	if f.view != nil {
		return f.view.Flow(), true
	}
	return packet.PeekFlow(f.Data)
}

// Materialize returns the frame's wire bytes, encoding them from the view
// on first need. The bytes come from the frame's arena (the heap outside
// arena-managed scenarios) and are identical to what the sender would have
// encoded eagerly; once attached they are immutable and authoritative.
func (f *Frame) Materialize() []byte {
	if f.Data != nil || f.view == nil {
		return f.Data
	}
	v := f.view
	buf := f.arena.Alloc(v.wireLen)
	var err error
	switch v.IP.Protocol {
	case packet.ProtoTCP:
		buf, err = packet.AppendTCP(buf, &v.IP, &v.TCP, v.Payload)
	case packet.ProtoICMP:
		buf, err = packet.AppendICMP(buf, &v.IP, &v.ICMP)
	default:
		panic("netem: frame view with unsupported protocol")
	}
	if err != nil {
		// Unreachable: the view builders validated the same conditions.
		panic("netem: materialize: " + err.Error())
	}
	f.Data = buf
	if f.arena != nil {
		f.arena.materialized++
	}
	return f.Data
}

// A Node accepts frames. Network elements implement Node and forward frames
// (possibly delayed, reordered, or dropped) to a downstream Node.
type Node interface {
	Input(f *Frame)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(*Frame)

// Input implements Node.
func (fn NodeFunc) Input(f *Frame) { fn(f) }

// Discard is a Node that drops everything, useful as a default sink.
var Discard Node = NodeFunc(func(*Frame) {})

// FrameIDs allocates network-unique frame IDs.
type FrameIDs struct{ next uint64 }

// Next returns a fresh nonzero frame ID.
func (s *FrameIDs) Next() uint64 {
	s.next++
	return s.next
}

// Issued returns how many IDs have been handed out — the number of frames
// born into the network under this ID space.
func (s *FrameIDs) Issued() uint64 { return s.next }

// Counters tracks what happened to frames at one element.
type Counters struct {
	In      uint64 // frames accepted
	Out     uint64 // frames forwarded downstream
	Dropped uint64 // frames discarded (queue overflow, loss)
	Swapped uint64 // adjacent exchanges performed (Swapper, StripedTrunk)
}

// Tap is a pass-through Node that invokes a callback for every frame before
// forwarding it, used by the trace package to capture ground truth at a
// point in the topology.
type Tap struct {
	next Node
	fn   func(*Frame, sim.Time)
	loop *sim.Loop
}

// NewTap returns a tap that calls fn(frame, now) and forwards to next.
func NewTap(loop *sim.Loop, next Node, fn func(*Frame, sim.Time)) *Tap {
	return &Tap{next: next, fn: fn, loop: loop}
}

// SetNext rewires the tap's downstream node, so scenario owners can pool
// taps across topology rebuilds (the capture callback and loop are fixed
// at construction).
func (t *Tap) SetNext(next Node) { t.next = next }

// Input implements Node.
func (t *Tap) Input(f *Frame) {
	if t.fn != nil {
		t.fn(f, t.loop.Now())
	}
	t.next.Input(f)
}
