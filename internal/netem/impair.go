package netem

import (
	"time"

	"reorder/internal/sim"
)

// Loss drops frames independently with a fixed probability.
type Loss struct {
	next  Node
	rng   *sim.Rand
	p     float64
	stats Counters
}

// NewLoss returns a lossy element feeding next.
func NewLoss(p float64, rng *sim.Rand, next Node) *Loss {
	return &Loss{next: next, rng: rng, p: p}
}

// Reinit reconfigures a pooled element exactly as NewLoss would. rng is
// normally the stream the element was built with, reseeded by the caller
// (sim.Rand.ForkInto).
func (l *Loss) Reinit(p float64, rng *sim.Rand, next Node) {
	l.next, l.rng, l.p = next, rng, p
	l.stats = Counters{}
}

// Stats returns a snapshot of the element's counters.
func (l *Loss) Stats() Counters { return l.stats }

// SetProb retargets the drop probability mid-flow, the scenario-timeline
// hook for loss bursts with hard start/stop edges. A probability at or
// below zero draws no randomness (sim.Rand.Bool), so an idle burst element
// is rng-inert between edges.
func (l *Loss) SetProb(p float64) { l.p = p }

// Input implements Node.
func (l *Loss) Input(f *Frame) {
	l.stats.In++
	if l.rng.Bool(l.p) {
		l.stats.Dropped++
		return
	}
	l.stats.Out++
	l.next.Input(f)
}

// Delay adds a fixed delay plus optional uniform jitter to every frame.
// Because jitter is applied independently per frame, a Delay with nonzero
// jitter can itself reorder closely spaced packets — which is sometimes the
// point, and is why the controlled-validation topology uses jitter of zero.
type Delay struct {
	loop      *sim.Loop
	next      Node
	rng       *sim.Rand
	base      time.Duration
	jitter    time.Duration
	stats     Counters
	deliverFn func(any)
}

// NewDelay returns a delay element feeding next. Each frame is delayed by
// base plus a uniform draw in [0, jitter).
func NewDelay(loop *sim.Loop, base, jitter time.Duration, rng *sim.Rand, next Node) *Delay {
	d := &Delay{loop: loop, next: next, rng: rng, base: base, jitter: jitter}
	d.deliverFn = func(arg any) {
		d.stats.Out++
		d.next.Input(arg.(*Frame))
	}
	return d
}

// Reinit reconfigures a pooled element exactly as NewDelay would, reusing
// the struct and its cached callback.
func (d *Delay) Reinit(base, jitter time.Duration, rng *sim.Rand, next Node) {
	d.next, d.rng, d.base, d.jitter = next, rng, base, jitter
	d.stats = Counters{}
}

// Stats returns a snapshot of the element's counters.
func (d *Delay) Stats() Counters { return d.stats }

// Input implements Node.
func (d *Delay) Input(f *Frame) {
	d.stats.In++
	delay := d.base
	if d.jitter > 0 {
		delay += time.Duration(d.rng.Float64() * float64(d.jitter))
	}
	d.loop.ScheduleArg(delay, d.deliverFn, f)
}
