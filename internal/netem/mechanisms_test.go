package netem

import (
	"net/netip"
	"testing"
	"time"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

func TestMultiPathStepSignature(t *testing.T) {
	// Two member paths 100µs apart in delay: back-to-back pairs reorder
	// (second packet takes the faster path), pairs gapped beyond the
	// spread never do.
	reorderAt := func(gap time.Duration) bool {
		loop := sim.NewLoop()
		sink := &collector{loop: loop}
		mp := NewMultiPath(loop, MultiPathConfig{
			Delays: []time.Duration{time.Millisecond + 100*time.Microsecond, time.Millisecond},
		}, sim.NewRand(1, 1), sink)
		mp.Input(frame(1, 40))
		loop.RunFor(gap)
		mp.Input(frame(2, 40))
		loop.RunUntilIdle(0)
		return sink.ids()[0] == 2
	}
	if !reorderAt(0) {
		t.Error("back-to-back pair not reordered across 100µs delay spread")
	}
	if !reorderAt(50 * time.Microsecond) {
		t.Error("pair inside the spread not reordered")
	}
	if reorderAt(150 * time.Microsecond) {
		t.Error("pair beyond the spread reordered")
	}
}

func TestMultiPathMemberFIFO(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	mp := NewMultiPath(loop, MultiPathConfig{
		Delays: []time.Duration{time.Millisecond, time.Millisecond},
		Jitter: 500 * time.Microsecond,
	}, sim.NewRand(2, 2), sink)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		mp.Input(frame(i, 40))
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != n {
		t.Fatalf("delivered %d/%d", len(sink.frames), n)
	}
	var lastEven, lastOdd uint64
	for _, id := range sink.ids() {
		if id%2 == 0 {
			if id < lastEven {
				t.Fatal("member FIFO violated")
			}
			lastEven = id
		} else {
			if id < lastOdd {
				t.Fatal("member FIFO violated")
			}
			lastOdd = id
		}
	}
}

func TestMultiPathDefaults(t *testing.T) {
	loop := sim.NewLoop()
	mp := NewMultiPath(loop, MultiPathConfig{}, sim.NewRand(1, 1), Discard)
	mp.Input(frame(1, 40))
	loop.RunUntilIdle(0)
	if mp.Stats().Out != 1 {
		t.Fatal("default config dropped the frame")
	}
}

func TestARQReordersOutOfOrderVariant(t *testing.T) {
	// Find a seed where the first frame needs recovery and the second
	// doesn't; with error rate 0.5 that's common.
	for seed := uint64(0); seed < 64; seed++ {
		loop := sim.NewLoop()
		sink := &collector{loop: loop}
		l := NewARQLink(loop, ARQConfig{FrameErrorRate: 0.5, RetransmitDelay: 2 * time.Millisecond}, sim.NewRand(seed, 1), sink)
		l.Input(frame(1, 40))
		loop.RunFor(100 * time.Microsecond)
		l.Input(frame(2, 40))
		loop.RunUntilIdle(0)
		if len(sink.frames) == 2 && sink.ids()[0] == 2 {
			// Frame 1 recovered late: gap between deliveries must be on
			// the order of the retransmit delay.
			if lag := sink.times[1].Sub(sink.times[0]); lag < time.Millisecond {
				t.Fatalf("recovered frame lag %v, want ~2ms", lag)
			}
			return
		}
	}
	t.Fatal("no seed produced the recovery-reorder pattern")
}

func TestARQInOrderVariantNeverReorders(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	l := NewARQLink(loop, ARQConfig{FrameErrorRate: 0.4, RetransmitDelay: time.Millisecond, InOrder: true}, sim.NewRand(4, 4), sink)
	const n = 300
	for i := uint64(1); i <= n; i++ {
		l.Input(frame(i, 40))
		loop.RunFor(50 * time.Microsecond)
	}
	loop.RunUntilIdle(0)
	prev := uint64(0)
	for _, id := range sink.ids() {
		if id < prev {
			t.Fatal("in-order ARQ reordered")
		}
		prev = id
	}
	if l.Stats().Swapped == 0 {
		t.Fatal("no frame ever needed recovery at 40% FER")
	}
}

func TestARQDropsAfterMaxRetries(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	l := NewARQLink(loop, ARQConfig{FrameErrorRate: 1.0, RetransmitDelay: time.Millisecond, MaxRetries: 3}, sim.NewRand(5, 5), sink)
	for i := uint64(1); i <= 50; i++ {
		l.Input(frame(i, 40))
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != 0 {
		t.Fatal("FER 1.0 delivered frames")
	}
	if l.Stats().Dropped != 50 {
		t.Fatalf("Dropped = %d", l.Stats().Dropped)
	}
}

func tosFrame(t *testing.T, id uint64, tos uint8) *Frame {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{10, 0, 0, 2}), TOS: tos},
		&packet.TCPHeader{SrcPort: 1, DstPort: 2, Seq: uint32(id), Flags: packet.FlagACK}, make([]byte, 400))
	if err != nil {
		t.Fatal(err)
	}
	return &Frame{ID: id, Data: raw}
}

func TestPriorityQueueExpeditesHighClass(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	q := NewPriorityQueue(loop, PriorityConfig{RateBps: 8_000_000}, sink) // slow: 1 byte/µs
	// Three low-priority packets queue up; then a high-priority one
	// arrives and must overtake the queued (not in-flight) ones.
	q.Input(tosFrame(t, 1, 0))
	q.Input(tosFrame(t, 2, 0))
	q.Input(tosFrame(t, 3, 0))
	q.Input(tosFrame(t, 4, 0x10))
	loop.RunUntilIdle(0)
	ids := sink.ids()
	if ids[0] != 1 {
		t.Fatalf("in-flight packet preempted: %v", ids)
	}
	if ids[1] != 4 {
		t.Fatalf("high-priority packet did not overtake the queue: %v", ids)
	}
}

func TestPriorityQueueSingleClassInOrder(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	q := NewPriorityQueue(loop, PriorityConfig{}, sink)
	for i := uint64(1); i <= 50; i++ {
		q.Input(tosFrame(t, i, 0))
	}
	loop.RunUntilIdle(0)
	for i, id := range sink.ids() {
		if id != uint64(i+1) {
			t.Fatal("single-class flow reordered")
		}
	}
}

func TestPriorityQueueConserves(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	q := NewPriorityQueue(loop, PriorityConfig{}, sink)
	rng := sim.NewRand(7, 7)
	const n = 200
	for i := uint64(1); i <= n; i++ {
		tos := uint8(0)
		if rng.Bool(0.3) {
			tos = 0x10
		}
		q.Input(tosFrame(t, i, tos))
		loop.RunFor(time.Duration(rng.IntN(100)) * time.Microsecond)
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != n {
		t.Fatalf("delivered %d/%d", len(sink.frames), n)
	}
}
