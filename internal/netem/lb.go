package netem

import (
	"reorder/internal/packet"
)

// BalanceMode selects how a load balancer pins flows to backends.
type BalanceMode int

const (
	// HashFourTuple hashes (src, sport, dst, dport, proto) — the common
	// stateless strategy the paper describes.
	HashFourTuple BalanceMode = iota
	// PerFlowTable establishes explicit per-flow state on the first packet
	// of a flow (typically the SYN) and routes subsequent packets by table
	// lookup, falling back to the hash for unknown flows.
	PerFlowTable
)

// LoadBalancer is a transparent per-flow balancer in front of a set of
// backends. It never reorders and never rewrites packets; its observable
// effect is that different connections to the same published address may
// terminate on different hosts, which is what invalidates the dual
// connection test's shared-IPID assumption (Fig 3) while leaving the SYN
// test sound (both SYNs share a 4-tuple, so they hit the same backend).
type LoadBalancer struct {
	mode     BalanceMode
	backends []Node
	table    map[packet.FlowKey]int
	stats    Counters
}

// NewLoadBalancer returns a balancer over the given backends.
func NewLoadBalancer(mode BalanceMode, backends ...Node) *LoadBalancer {
	if len(backends) == 0 {
		panic("netem: load balancer needs at least one backend")
	}
	return &LoadBalancer{mode: mode, backends: backends, table: make(map[packet.FlowKey]int)}
}

// Reinit reconfigures a pooled balancer exactly as NewLoadBalancer would,
// reusing the struct and its flow table's storage. The backends slice is
// retained as given (callers pooling the balancer typically reuse one
// slice).
func (lb *LoadBalancer) Reinit(mode BalanceMode, backends []Node) {
	if len(backends) == 0 {
		panic("netem: load balancer needs at least one backend")
	}
	lb.mode, lb.backends = mode, backends
	lb.stats = Counters{}
	clear(lb.table)
}

// Stats returns a snapshot of the balancer's counters.
func (lb *LoadBalancer) Stats() Counters { return lb.stats }

// Backend returns the index of the backend that frames of flow k are
// pinned to right now (for tests and diagnostics).
func (lb *LoadBalancer) Backend(k packet.FlowKey) int {
	if lb.mode == PerFlowTable {
		if i, ok := lb.table[k]; ok {
			return i
		}
	}
	return int(k.Hash() % uint64(len(lb.backends)))
}

// Input implements Node. Classification uses the frame's cached flow key
// when a view is attached, falling back to a PeekFlow over the wire bytes.
func (lb *LoadBalancer) Input(f *Frame) {
	lb.stats.In++
	k, ok := f.Flow()
	if !ok {
		lb.stats.Dropped++
		return
	}
	i := lb.Backend(k)
	if lb.mode == PerFlowTable {
		if _, seen := lb.table[k]; !seen {
			lb.table[k] = i
		}
	}
	lb.stats.Out++
	lb.backends[i].Input(f)
}
