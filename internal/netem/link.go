package netem

import (
	"time"

	"reorder/internal/sim"
)

// LinkConfig describes a point-to-point link.
type LinkConfig struct {
	// RateBps is the line rate in bits per second. Zero means infinitely
	// fast (no serialization delay).
	RateBps int64
	// PropDelay is the one-way propagation delay.
	PropDelay time.Duration
	// QueueLimit is the droptail queue capacity in packets, counting the
	// packet in transmission. Zero means unbounded.
	QueueLimit int
}

// Link is a FIFO store-and-forward link: frames serialize at the line rate,
// wait out the propagation delay, and arrive downstream in order. A link by
// itself never reorders.
type Link struct {
	cfg   LinkConfig
	loop  *sim.Loop
	next  Node
	stats Counters

	busyUntil sim.Time // when the transmitter frees up
	queued    int      // frames queued or in transmission

	// departFn and deliverFn are scheduled via AtArg with the frame as
	// argument, so per-frame forwarding allocates no closures.
	departFn  func(any)
	deliverFn func(any)
}

// NewLink returns a link feeding next.
func NewLink(loop *sim.Loop, cfg LinkConfig, next Node) *Link {
	l := &Link{cfg: cfg, loop: loop, next: next}
	l.departFn = func(any) {
		// Clamped, not plain decrement: a timeline that lifts the queue
		// bound mid-flow (SetQueueLimit to 0) leaves already-scheduled
		// departures behind, and occupancy must not go negative.
		if l.queued > 0 {
			l.queued--
		}
	}
	l.deliverFn = func(arg any) {
		l.stats.Out++
		l.next.Input(arg.(*Frame))
	}
	return l
}

// Reinit reconfigures a pooled link exactly as NewLink would, reusing the
// struct and its cached callbacks. The loop must be the one the link was
// built on (pools are per-scenario).
func (l *Link) Reinit(cfg LinkConfig, next Node) {
	l.cfg, l.next = cfg, next
	l.stats = Counters{}
	l.busyUntil, l.queued = 0, 0
}

// Stats returns a snapshot of the link's counters.
func (l *Link) Stats() Counters { return l.stats }

// Rate returns the current line rate in bits per second.
func (l *Link) Rate() int64 { return l.cfg.RateBps }

// QueueLimit returns the current droptail capacity (0 = unbounded).
func (l *Link) QueueLimit() int { return l.cfg.QueueLimit }

// SetRate retargets the line rate mid-flow, the scenario-timeline hook for
// oscillating bandwidth throttles. Frames already serializing keep the
// departure time computed at their old rate (busyUntil is not rewritten);
// the new rate applies from the next arrival, like a shaper reprogrammed
// between packets. Non-positive rates mean infinitely fast, as in
// LinkConfig.
func (l *Link) SetRate(bps int64) { l.cfg.RateBps = bps }

// SetQueueLimit retargets the droptail capacity mid-flow, the hook for
// bufferbloat ramps. Occupancy is tracked only while a bound is in force
// (unbounded operation elides the departure events that maintain it), so a
// bound imposed mid-flow counts frames arriving after the edge — the
// approximation errs toward admitting in-flight traffic, never toward
// spurious drops of it.
func (l *Link) SetQueueLimit(n int) { l.cfg.QueueLimit = n }

// TxTime returns the serialization delay of n bytes at the link rate.
func (l *Link) TxTime(n int) time.Duration {
	if l.cfg.RateBps <= 0 {
		return 0
	}
	return time.Duration(int64(n) * 8 * int64(time.Second) / l.cfg.RateBps)
}

// Input implements Node.
func (l *Link) Input(f *Frame) {
	l.stats.In++
	if l.cfg.QueueLimit > 0 && l.queued >= l.cfg.QueueLimit {
		l.stats.Dropped++
		return
	}
	now := l.loop.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	departure := start.Add(l.TxTime(f.Len()))
	l.busyUntil = departure
	arrival := departure.Add(l.cfg.PropDelay)
	// The departure event only maintains the queue occupancy counter; an
	// unbounded link never reads it, so elide the event — one heap
	// operation per frame instead of two on the campaign's hot path.
	// busyUntil alone carries the serialization state either way, and
	// removing an event never perturbs the relative order of the rest
	// (ties break by scheduling order, which is preserved).
	if l.cfg.QueueLimit > 0 {
		l.queued++
		l.loop.AtArg(departure, l.departFn, nil)
	}
	l.loop.AtArg(arrival, l.deliverFn, f)
}
