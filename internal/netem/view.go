package netem

import (
	"reorder/internal/packet"
	"reorder/internal/sim"
)

// DebugForceMaterialize, when set, makes every view-built frame encode its
// wire bytes eagerly and drop the view, forcing the whole simulation onto
// the byte/decode path. It exists for differential testing — campaign
// output must be byte-identical with views on and off — and must only be
// toggled while no simulation is running.
var DebugForceMaterialize = false

// FrameView is the decoded form of a datagram, attached to a Frame at
// transmission so pass-through network elements and the receiving stack
// never pay an encode/decode round trip. Views are arena-owned: headers
// are stored by value, TCP options and payload in arena (or view-inline)
// storage, all valid until the owning arena resets.
//
// A view is always checksum-valid by construction — it only exists for
// datagrams a sender built, never for bytes of unknown provenance — so the
// IP, TCP and ICMP Checksum fields are left zero; nothing outside the
// codec's own tests reads them. Every other field holds exactly what
// decoding the materialized wire bytes would produce.
type FrameView struct {
	IP   packet.IPv4Header
	TCP  packet.TCPHeader // valid when IP.Protocol == packet.ProtoTCP
	ICMP packet.ICMPEcho  // valid when IP.Protocol == packet.ProtoICMP

	// Payload is the transport payload (TCP data; for ICMP see
	// ICMP.Payload), arena-owned.
	Payload []byte

	wireLen int
	// opts and optData hold the deep-copied TCP options inline: at most
	// four options (MSS, SACK-permitted, two NOPs plus a three-block SACK
	// are the worst emitted set) and their data bytes.
	opts    [4]packet.TCPOption
	optData [40]byte
}

// WireLen returns the length the datagram has (or will have) on the wire.
func (v *FrameView) WireLen() int { return v.wireLen }

// Flow returns the datagram's flow key — what load balancers and host
// demultiplexers would otherwise PeekFlow the wire bytes for. It is
// assembled from the already-parsed headers; no bytes are touched.
func (v *FrameView) Flow() packet.FlowKey {
	k := packet.FlowKey{Src: v.IP.Src, Dst: v.IP.Dst, Proto: v.IP.Protocol}
	switch v.IP.Protocol {
	case packet.ProtoTCP:
		k.SrcPort, k.DstPort = v.TCP.SrcPort, v.TCP.DstPort
	case packet.ProtoICMP:
		k.SrcPort = v.ICMP.Ident
	}
	return k
}

// ToPacket copies the view into a caller-owned decoded packet, reusing its
// transport header structs and option storage exactly as packet.DecodeInto
// does. Option data and payload alias the view's storage, which lives as
// long as wire bytes would — until the owning arena resets.
func (v *FrameView) ToPacket(p *packet.Packet) {
	p.IP = v.IP
	p.WireLen = v.wireLen
	p.Payload = nil
	switch v.IP.Protocol {
	case packet.ProtoTCP:
		p.UDP, p.ICMP = nil, nil
		if p.TCP == nil {
			p.TCP = new(packet.TCPHeader)
		}
		opts := p.TCP.Options[:0]
		*p.TCP = v.TCP
		p.TCP.Options = append(opts, v.TCP.Options...)
		p.Payload = v.Payload
	case packet.ProtoICMP:
		p.TCP, p.UDP = nil, nil
		if p.ICMP == nil {
			p.ICMP = new(packet.ICMPEcho)
		}
		*p.ICMP = v.ICMP
	default:
		// No view builder produces other protocols; sever every transport
		// pointer so a stale previous decode can never leak through.
		p.TCP, p.UDP, p.ICMP = nil, nil, nil
	}
}

// NewTCPFrame builds a frame carrying an IPv4+TCP datagram in decoded form:
// the headers and payload are copied into arena-owned view storage and no
// wire bytes are produced until something materializes them. Validation
// matches packet.AppendTCP, and the header normalization (protocol, total
// length, default TTL) matches what an encode/decode round trip would
// yield, so consumers of the view see exactly what decoders would. Callers
// may reuse ip, tcp and payload immediately.
func (a *Arena) NewTCPFrame(id uint64, born sim.Time, ip *packet.IPv4Header, tcp *packet.TCPHeader, payload []byte) (*Frame, error) {
	optLen, err := tcp.OptionsWireLen()
	if err != nil {
		return nil, err
	}
	total := ipv4WireLen + tcpWireLen + optLen + len(payload)
	if err := checkIPHeader(ip, total); err != nil {
		return nil, err
	}
	v := a.newView()
	v.IP = *ip
	v.IP.Protocol = packet.ProtoTCP
	v.IP.TotalLen = uint16(total)
	v.IP.Checksum = 0
	if v.IP.TTL == 0 {
		v.IP.TTL = 64
	}
	if !v.copyOptions(tcp.Options) {
		// Exotic option sets that exceed the inline storage fall back to
		// an eagerly encoded frame — correct, merely not zero-copy.
		return a.encodedTCPFrame(id, born, ip, tcp, payload, total)
	}
	// Field-wise copy: a struct assignment would also write (and then
	// rewrite) the Options pointer, paying a write barrier for nothing.
	v.TCP.SrcPort, v.TCP.DstPort = tcp.SrcPort, tcp.DstPort
	v.TCP.Seq, v.TCP.Ack = tcp.Seq, tcp.Ack
	v.TCP.Flags, v.TCP.Window, v.TCP.Urgent = tcp.Flags, tcp.Window, tcp.Urgent
	v.TCP.Checksum = 0
	v.Payload = a.CopyBytes(payload)
	v.wireLen = total
	return a.viewFrame(id, born, v), nil
}

// NewICMPFrame is NewTCPFrame for an ICMP echo datagram.
func (a *Arena) NewICMPFrame(id uint64, born sim.Time, ip *packet.IPv4Header, echo *packet.ICMPEcho) (*Frame, error) {
	total := ipv4WireLen + icmpWireLen + len(echo.Payload)
	if err := checkIPHeader(ip, total); err != nil {
		return nil, err
	}
	v := a.newView()
	v.IP = *ip
	v.IP.Protocol = packet.ProtoICMP
	v.IP.TotalLen = uint16(total)
	v.IP.Checksum = 0
	if v.IP.TTL == 0 {
		v.IP.TTL = 64
	}
	v.ICMP = *echo
	v.ICMP.Checksum = 0
	v.ICMP.Payload = a.CopyBytes(echo.Payload)
	v.Payload = nil
	v.TCP = packet.TCPHeader{}
	v.wireLen = total
	return a.viewFrame(id, born, v), nil
}

// viewFrame wraps a completed view in a frame, honoring the differential
// force-materialize debug mode.
func (a *Arena) viewFrame(id uint64, born sim.Time, v *FrameView) *Frame {
	f := a.NewFrame(id, nil, born)
	f.view = v
	if DebugForceMaterialize {
		f.Materialize()
		f.view = nil
	}
	return f
}

// encodedTCPFrame is the non-view fallback: encode eagerly into arena
// bytes, exactly what senders did before views existed.
func (a *Arena) encodedTCPFrame(id uint64, born sim.Time, ip *packet.IPv4Header, tcp *packet.TCPHeader, payload []byte, total int) (*Frame, error) {
	buf, err := packet.AppendTCP(a.Alloc(total), ip, tcp, payload)
	if err != nil {
		return nil, err
	}
	return a.NewFrame(id, buf, born), nil
}

// copyOptions deep-copies the option list into the view's inline storage,
// reporting false when it does not fit.
func (v *FrameView) copyOptions(opts []packet.TCPOption) bool {
	if len(opts) > len(v.opts) {
		return false
	}
	od := v.optData[:0]
	for i, o := range opts {
		v.opts[i] = packet.TCPOption{Kind: o.Kind}
		if n := len(o.Data); n > 0 {
			if len(od)+n > cap(od) {
				return false
			}
			start := len(od)
			od = append(od, o.Data...)
			v.opts[i].Data = od[start:len(od):len(od)]
		}
	}
	v.TCP.Options = v.opts[:len(opts)]
	return true
}

// checkIPHeader applies the validation packet.AppendTCP/AppendICMP would.
func checkIPHeader(ip *packet.IPv4Header, total int) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return packet.ErrBadHeader
	}
	if total > 0xffff {
		return packet.ErrBadHeader
	}
	return nil
}

// Wire sizes mirrored from the packet codec (IPv4 and TCP base headers,
// ICMP echo header).
const (
	ipv4WireLen = 20
	tcpWireLen  = 20
	icmpWireLen = 8
)
