package netem

import (
	"net/netip"
	"testing"
	"time"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// collector records arrival order and times.
type collector struct {
	loop   *sim.Loop
	frames []*Frame
	times  []sim.Time
}

func (c *collector) Input(f *Frame) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, c.loop.Now())
}

func (c *collector) ids() []uint64 {
	ids := make([]uint64, len(c.frames))
	for i, f := range c.frames {
		ids[i] = f.ID
	}
	return ids
}

func frame(id uint64, n int) *Frame { return &Frame{ID: id, Data: make([]byte, n)} }

func TestLinkDelaysAndPreservesOrder(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	// 8 Mbps -> 1 byte per microsecond.
	l := NewLink(loop, LinkConfig{RateBps: 8_000_000, PropDelay: 100 * time.Microsecond}, sink)
	l.Input(frame(1, 100))
	l.Input(frame(2, 100))
	loop.RunUntilIdle(0)
	if got := sink.ids(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("arrival order = %v, want [1 2]", got)
	}
	// Frame 1: tx 100us + prop 100us = 200us. Frame 2 queues behind: 300us.
	if sink.times[0] != sim.Time(200*time.Microsecond) {
		t.Errorf("frame 1 arrived at %v, want 200µs", sink.times[0])
	}
	if sink.times[1] != sim.Time(300*time.Microsecond) {
		t.Errorf("frame 2 arrived at %v, want 300µs", sink.times[1])
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	l := NewLink(loop, LinkConfig{PropDelay: time.Millisecond}, sink)
	l.Input(frame(1, 1500))
	loop.RunUntilIdle(0)
	if sink.times[0] != sim.Time(time.Millisecond) {
		t.Errorf("arrival at %v, want exactly the propagation delay", sink.times[0])
	}
}

func TestLinkQueueDrop(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	l := NewLink(loop, LinkConfig{RateBps: 8_000, QueueLimit: 2}, sink) // 1ms/byte: slow
	for i := uint64(1); i <= 5; i++ {
		l.Input(frame(i, 10))
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (queue limit)", len(sink.frames))
	}
	st := l.Stats()
	if st.In != 5 || st.Out != 2 || st.Dropped != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	l := NewLink(loop, LinkConfig{RateBps: 8_000_000, QueueLimit: 1}, sink)
	l.Input(frame(1, 100)) // occupies transmitter for 100µs
	loop.RunFor(time.Millisecond)
	l.Input(frame(2, 100)) // transmitter idle again: accepted
	loop.RunUntilIdle(0)
	if len(sink.frames) != 2 {
		t.Fatalf("delivered %d, want 2 after drain", len(sink.frames))
	}
}

func TestSwapperSwapsAdjacent(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	s := NewSwapper(loop, 1.0, sim.NewRand(1, 1), sink) // always swap
	s.Input(frame(1, 40))
	s.Input(frame(2, 40))
	loop.RunUntilIdle(0)
	if got := sink.ids(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("order = %v, want [2 1]", got)
	}
	if s.Stats().Swapped != 1 {
		t.Errorf("Swapped = %d, want 1", s.Stats().Swapped)
	}
}

func TestSwapperNeverSwapsAtZero(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	s := NewSwapper(loop, 0, sim.NewRand(1, 1), sink)
	for i := uint64(1); i <= 20; i++ {
		s.Input(frame(i, 40))
	}
	loop.RunUntilIdle(0)
	for i, id := range sink.ids() {
		if id != uint64(i+1) {
			t.Fatalf("order perturbed at %d: %v", i, sink.ids())
		}
	}
}

func TestSwapperFlushesLonePacket(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	s := NewSwapper(loop, 1.0, sim.NewRand(1, 1), sink)
	s.SetFlushAfter(10 * time.Millisecond)
	s.Input(frame(1, 40))
	loop.RunUntilIdle(0)
	if len(sink.frames) != 1 {
		t.Fatal("lone held packet never flushed")
	}
	if sink.times[0] != sim.Time(10*time.Millisecond) {
		t.Errorf("flushed at %v, want 10ms", sink.times[0])
	}
}

func TestSwapperConservesFrames(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	s := NewSwapper(loop, 0.4, sim.NewRand(2, 3), sink)
	const n = 500
	for i := uint64(1); i <= n; i++ {
		s.Input(frame(i, 40))
		loop.RunFor(10 * time.Microsecond)
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != n {
		t.Fatalf("delivered %d, want %d", len(sink.frames), n)
	}
	seen := map[uint64]bool{}
	for _, id := range sink.ids() {
		if seen[id] {
			t.Fatalf("frame %d duplicated", id)
		}
		seen[id] = true
	}
}

func TestSwapperOnlyAdjacentExchanges(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	s := NewSwapper(loop, 0.5, sim.NewRand(5, 8), sink)
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		s.Input(frame(i, 40))
		loop.RunFor(time.Microsecond)
	}
	loop.RunUntilIdle(0)
	// Every frame must land within one position of its injection slot.
	for pos, id := range sink.ids() {
		d := int(id) - (pos + 1)
		if d < -1 || d > 1 {
			t.Fatalf("frame %d displaced by %d positions", id, d)
		}
	}
}

func TestSwapperApproximatesProbability(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	const p = 0.10
	s := NewSwapper(loop, p, sim.NewRand(9, 9), sink)
	const pairs = 5000
	for i := uint64(0); i < pairs; i++ {
		s.Input(frame(i*2+1, 40))
		s.Input(frame(i*2+2, 40))
		loop.RunUntilIdle(0) // drain between pairs so swaps are within-pair
	}
	rate := float64(s.Stats().Swapped) / pairs
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("swap rate = %.3f, want ≈ %.2f", rate, p)
	}
}

func TestSwapperTimeVaryingProbability(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	// Probability 1 before t=1s, 0 after.
	s := NewSwapperFunc(loop, func(t sim.Time) float64 {
		if t < sim.Time(time.Second) {
			return 1
		}
		return 0
	}, sim.NewRand(1, 1), sink)
	s.Input(frame(1, 40))
	s.Input(frame(2, 40))
	loop.RunUntil(sim.Time(2 * time.Second))
	s.Input(frame(3, 40))
	s.Input(frame(4, 40))
	loop.RunUntilIdle(0)
	got := sink.ids()
	want := []uint64{2, 1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestLossRate(t *testing.T) {
	l := NewLoss(0.25, sim.NewRand(4, 4), Discard)
	const n = 10000
	for i := 0; i < n; i++ {
		l.Input(frame(uint64(i), 40))
	}
	st := l.Stats()
	rate := float64(st.Dropped) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("loss rate = %.3f, want ≈ 0.25", rate)
	}
	if st.In != n || st.Out+st.Dropped != n {
		t.Errorf("conservation violated: %+v", st)
	}
}

func TestDelayFixed(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	d := NewDelay(loop, 5*time.Millisecond, 0, sim.NewRand(1, 1), sink)
	d.Input(frame(1, 40))
	loop.RunUntilIdle(0)
	if sink.times[0] != sim.Time(5*time.Millisecond) {
		t.Errorf("arrival at %v, want 5ms", sink.times[0])
	}
}

func TestDelayJitterBounded(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	d := NewDelay(loop, time.Millisecond, time.Millisecond, sim.NewRand(6, 6), sink)
	for i := uint64(0); i < 200; i++ {
		d.Input(frame(i, 40))
	}
	start := loop.Now()
	loop.RunUntilIdle(0)
	for _, at := range sink.times {
		dl := at.Sub(start)
		if dl < time.Millisecond || dl >= 2*time.Millisecond {
			t.Fatalf("delay %v outside [1ms, 2ms)", dl)
		}
	}
}

func TestStripedTrunkConservesAndKeepsMemberFIFO(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	tr := NewStripedTrunk(loop, TrunkConfig{FanOut: 2, BurstProb: 0.5, MeanBurstBytes: 4000}, sim.NewRand(3, 1), sink)
	const n = 400
	for i := uint64(1); i <= n; i++ {
		tr.Input(frame(i, 40))
		loop.RunFor(2 * time.Microsecond)
	}
	loop.RunUntilIdle(0)
	if len(sink.frames) != n {
		t.Fatalf("delivered %d, want %d", len(sink.frames), n)
	}
	// Member FIFO: frames with the same parity (same member under 2-way
	// round robin) must arrive in injection order.
	var lastEven, lastOdd uint64
	for _, id := range sink.ids() {
		if id%2 == 0 {
			if id < lastEven {
				t.Fatalf("member FIFO violated for even stream: %d after %d", id, lastEven)
			}
			lastEven = id
		} else {
			if id < lastOdd {
				t.Fatalf("member FIFO violated for odd stream: %d after %d", id, lastOdd)
			}
			lastOdd = id
		}
	}
}

func TestStripedTrunkNoBurstsNoReorder(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	tr := NewStripedTrunk(loop, TrunkConfig{FanOut: 2, BurstProb: 0}, sim.NewRand(3, 1), sink)
	for i := uint64(1); i <= 100; i++ {
		tr.Input(frame(i, 40))
		loop.RunFor(time.Microsecond)
	}
	loop.RunUntilIdle(0)
	for i, id := range sink.ids() {
		if id != uint64(i+1) {
			t.Fatalf("reordering without queue imbalance: %v", sink.ids())
		}
	}
}

// reorderRateAtGap measures the probability that a back-to-back pair with
// the given spacing is exchanged by the trunk.
func reorderRateAtGap(t *testing.T, gap time.Duration, pairs int) float64 {
	t.Helper()
	loop := sim.NewLoop()
	cfg := TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.3, MeanBurstBytes: 2500}
	exchanged := 0
	for i := 0; i < pairs; i++ {
		sink := &collector{loop: loop}
		tr := NewStripedTrunk(loop, cfg, sim.NewRand(uint64(i), 77), sink)
		tr.Input(frame(1, 40))
		loop.RunFor(gap)
		tr.Input(frame(2, 40))
		loop.RunUntilIdle(0)
		if sink.ids()[0] == 2 {
			exchanged++
		}
	}
	return float64(exchanged) / float64(pairs)
}

func TestStripedTrunkGapDependence(t *testing.T) {
	// The Fig 7 shape: reordering decays as the inter-packet gap grows.
	r0 := reorderRateAtGap(t, 0, 2000)
	r50 := reorderRateAtGap(t, 50*time.Microsecond, 2000)
	r250 := reorderRateAtGap(t, 250*time.Microsecond, 2000)
	if r0 < 0.05 {
		t.Errorf("back-to-back reorder rate = %.3f, want >= 0.05", r0)
	}
	if r50 >= r0 {
		t.Errorf("rate did not decay: r0=%.3f r50=%.3f", r0, r50)
	}
	if r250 > 0.01 {
		t.Errorf("rate at 250µs = %.3f, want ≈ 0", r250)
	}
}

func lbFrame(t *testing.T, src netip.Addr, sport uint16, id uint64) *Frame {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: src, Dst: netip.AddrFrom4([4]byte{10, 0, 0, 99})},
		&packet.TCPHeader{SrcPort: sport, DstPort: 80, Flags: packet.FlagSYN}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Frame{ID: id, Data: raw}
}

func TestLoadBalancerPinsFlows(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	for _, mode := range []BalanceMode{HashFourTuple, PerFlowTable} {
		b0, b1 := &collector{}, &collector{}
		loop := sim.NewLoop()
		b0.loop, b1.loop = loop, loop
		lb := NewLoadBalancer(mode, b0, b1)
		// Same 4-tuple repeatedly: must always hit the same backend. This is
		// the property the SYN test exploits.
		for i := uint64(0); i < 10; i++ {
			lb.Input(lbFrame(t, src, 5555, i))
		}
		if len(b0.frames) != 0 && len(b1.frames) != 0 {
			t.Fatalf("mode %v: one flow split across backends (%d/%d)", mode, len(b0.frames), len(b1.frames))
		}
		if len(b0.frames)+len(b1.frames) != 10 {
			t.Fatalf("mode %v: frames lost", mode)
		}
	}
}

func TestLoadBalancerSpreadsConnections(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	b0, b1 := &collector{}, &collector{}
	loop := sim.NewLoop()
	b0.loop, b1.loop = loop, loop
	lb := NewLoadBalancer(HashFourTuple, b0, b1)
	// Many distinct source ports: both backends should see traffic. This is
	// what breaks the dual connection test (Fig 3).
	for p := uint16(4000); p < 4064; p++ {
		lb.Input(lbFrame(t, src, p, uint64(p)))
	}
	if len(b0.frames) == 0 || len(b1.frames) == 0 {
		t.Fatalf("64 distinct flows all landed on one backend (%d/%d)", len(b0.frames), len(b1.frames))
	}
}

func TestLoadBalancerPerFlowTableStable(t *testing.T) {
	src := netip.AddrFrom4([4]byte{10, 0, 0, 1})
	loop := sim.NewLoop()
	b0, b1 := &collector{loop: loop}, &collector{loop: loop}
	lb := NewLoadBalancer(PerFlowTable, b0, b1)
	f := lbFrame(t, src, 1234, 1)
	k, _ := packet.PeekFlow(f.Data)
	lb.Input(f)
	want := lb.Backend(k)
	for i := uint64(2); i < 8; i++ {
		lb.Input(lbFrame(t, src, 1234, i))
		if lb.Backend(k) != want {
			t.Fatal("table entry moved")
		}
	}
}

func TestLoadBalancerDropsUnparseable(t *testing.T) {
	loop := sim.NewLoop()
	b := &collector{loop: loop}
	lb := NewLoadBalancer(HashFourTuple, b)
	lb.Input(&Frame{ID: 1, Data: []byte{1, 2, 3}})
	if lb.Stats().Dropped != 1 || len(b.frames) != 0 {
		t.Fatal("garbage frame not dropped")
	}
}

func TestTapObservesAndForwards(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	var seen []uint64
	tap := NewTap(loop, sink, func(f *Frame, at sim.Time) { seen = append(seen, f.ID) })
	tap.Input(frame(7, 40))
	if len(seen) != 1 || seen[0] != 7 || len(sink.frames) != 1 {
		t.Fatal("tap lost or failed to observe the frame")
	}
}

func TestFrameIDsUniqueAndNonzero(t *testing.T) {
	var s FrameIDs
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id == 0 || seen[id] {
			t.Fatalf("id %d zero or duplicated", id)
		}
		seen[id] = true
	}
}

func BenchmarkLinkForwarding(b *testing.B) {
	loop := sim.NewLoop()
	l := NewLink(loop, LinkConfig{RateBps: 1_000_000_000, PropDelay: time.Millisecond}, Discard)
	f := frame(1, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Input(f)
		loop.RunUntilIdle(0)
	}
}

func BenchmarkStripedTrunk(b *testing.B) {
	loop := sim.NewLoop()
	tr := NewStripedTrunk(loop, TrunkConfig{FanOut: 2, BurstProb: 0.3, MeanBurstBytes: 2500}, sim.NewRand(1, 1), Discard)
	f := frame(1, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Input(f)
		loop.RunUntilIdle(0)
	}
}
