package netem

import (
	"net/netip"
	"testing"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// mbFixture wires a middlebox feeding a collector, sharing one arena and
// frame-ID space like a built simnet path would.
type mbFixture struct {
	loop  *sim.Loop
	arena *Arena
	ids   *FrameIDs
	sink  *collector
	mb    *Middlebox
}

func newMBFixture(t *testing.T, cfg MiddleboxConfig, seed uint64) *mbFixture {
	t.Helper()
	fx := &mbFixture{loop: sim.NewLoop(), arena: &Arena{}, ids: &FrameIDs{}}
	fx.sink = &collector{loop: fx.loop}
	fx.mb = NewMiddlebox(cfg, fx.loop, sim.NewRand(seed, 0x3b), fx.arena, fx.ids, fx.sink)
	return fx
}

func (fx *mbFixture) tcpFrame(t *testing.T, flags uint8, payload []byte) *Frame {
	t.Helper()
	ip := packet.IPv4Header{
		Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("10.0.0.2"),
		ID:  0x1234,
	}
	tcp := packet.TCPHeader{
		SrcPort: 4000, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: flags, Window: 60000,
	}
	f, err := fx.arena.NewTCPFrame(fx.ids.Next(), fx.loop.Now(), &ip, &tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// decodeOut decodes the i-th delivered frame from its wire bytes, so the
// assertion sees exactly what an endpoint would.
func (fx *mbFixture) decodeOut(t *testing.T, i int) *packet.Packet {
	t.Helper()
	var p packet.Packet
	if err := packet.DecodeInto(&p, fx.sink.frames[i].Materialize()); err != nil {
		t.Fatalf("delivered frame %d does not decode: %v", i, err)
	}
	return &p
}

func TestMiddleboxInjectsRST(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{RSTProb: 1}, 1)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK|packet.FlagPSH, []byte("hello")))
	if len(fx.sink.frames) != 2 {
		t.Fatalf("delivered %d frames, want data + injected RST", len(fx.sink.frames))
	}
	rst := fx.decodeOut(t, 1)
	if rst.TCP == nil || rst.TCP.Flags != packet.FlagRST|packet.FlagACK {
		t.Fatalf("injected segment flags = %#x, want RST|ACK", rst.TCP.Flags)
	}
	if rst.TCP.Seq != 1000+5 {
		t.Fatalf("injected Seq = %d, want past the payload (1005)", rst.TCP.Seq)
	}
	if len(rst.Payload) != 0 {
		t.Fatal("injected RST carries payload")
	}
	if st := fx.mb.MiddleboxStats(); st.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", st.Injected)
	}

	// Control segments are never attacked: a SYN passes alone.
	fx.mb.Input(fx.tcpFrame(t, packet.FlagSYN, nil))
	if len(fx.sink.frames) != 3 {
		t.Fatalf("SYN triggered injection: %d frames delivered", len(fx.sink.frames))
	}
}

func TestMiddleboxFINInjection(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{FINProb: 1}, 2)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("data")))
	if len(fx.sink.frames) != 2 {
		t.Fatalf("delivered %d frames, want data + injected FIN", len(fx.sink.frames))
	}
	fin := fx.decodeOut(t, 1)
	if fin.TCP.Flags != packet.FlagFIN|packet.FlagACK {
		t.Fatalf("injected flags = %#x, want FIN|ACK", fin.TCP.Flags)
	}
}

func TestMiddleboxSequenceHole(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{HoleProb: 1}, 3)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("swallowed")))
	if len(fx.sink.frames) != 0 {
		t.Fatal("data segment not swallowed at HoleProb=1")
	}
	st := fx.mb.Stats()
	if st.Dropped != 1 || fx.mb.MiddleboxStats().Holes != 1 {
		t.Fatalf("stats = %+v holes = %d", st, fx.mb.MiddleboxStats().Holes)
	}
	// Pure ACKs and control segments pass: the hole only opens in data.
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, nil))
	fx.mb.Input(fx.tcpFrame(t, packet.FlagSYN, nil))
	if len(fx.sink.frames) != 2 {
		t.Fatalf("control/ack traffic swallowed: %d delivered", len(fx.sink.frames))
	}
}

func TestMiddleboxHeaderRewrite(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{TTLClamp: 9, WindowClamp: 1024, RewriteTOS: true, TOS: 0}, 4)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("payload")))
	if len(fx.sink.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(fx.sink.frames))
	}
	p := fx.decodeOut(t, 0) // DecodeInto verifies both checksums
	if p.IP.TTL != 9 {
		t.Fatalf("TTL = %d, want clamped to 9", p.IP.TTL)
	}
	if p.TCP.Window != 1024 {
		t.Fatalf("Window = %d, want clamped to 1024", p.TCP.Window)
	}
	if string(p.Payload) != "payload" {
		t.Fatalf("payload corrupted by rewrite: %q", p.Payload)
	}
	if fx.mb.MiddleboxStats().Rewritten != 1 {
		t.Fatal("rewrite not counted")
	}
	// A frame already under the clamps is forwarded as-is, not re-encoded.
	ip := packet.IPv4Header{
		Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("10.0.0.2"),
		TTL: 5,
	}
	tcp := packet.TCPHeader{SrcPort: 4000, DstPort: 80, Flags: packet.FlagACK, Window: 512}
	low, err := fx.arena.NewTCPFrame(fx.ids.Next(), fx.loop.Now(), &ip, &tcp, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx.mb.Input(low)
	if fx.sink.frames[1] != low {
		t.Fatal("unmodified frame was re-allocated")
	}
}

func TestMiddleboxActiveEdge(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{HoleProb: 1, Inactive: true}, 5)
	if fx.mb.Active() {
		t.Fatal("built active despite Inactive config")
	}
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("x")))
	fx.mb.SetActive(true)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("y")))
	fx.mb.SetActive(false)
	fx.mb.Input(fx.tcpFrame(t, packet.FlagACK, []byte("z")))
	if len(fx.sink.frames) != 2 {
		t.Fatalf("delivered %d, want 2 (only the mid-window frame swallowed)", len(fx.sink.frames))
	}
	if fx.mb.MiddleboxStats().Holes != 1 {
		t.Fatalf("Holes = %d, want 1", fx.mb.MiddleboxStats().Holes)
	}
}

// TestMiddleboxZeroConfigDrawsNoRandomness pins the rng-inertness contract
// an all-zero middlebox shares with zero-probability impairments: the
// element must not advance its stream, so inserting it cannot shift any
// later draw.
func TestMiddleboxZeroConfigDrawsNoRandomness(t *testing.T) {
	fx := newMBFixture(t, MiddleboxConfig{}, 7)
	rng := sim.NewRand(7, 0x3b) // twin of the middlebox's stream
	for i := 0; i < 4; i++ {
		fx.mb.Input(fx.tcpFrame(t, packet.FlagACK|packet.FlagPSH, []byte("data")))
	}
	if len(fx.sink.frames) != 4 {
		t.Fatalf("all-zero middlebox delivered %d/4", len(fx.sink.frames))
	}
	// The middlebox's private stream is exposed only through behavior; an
	// equal next draw proves it never consumed one.
	mbRng := sim.NewRand(7, 0x3b)
	if mbRng.Uint64() != rng.Uint64() {
		t.Fatal("twin streams disagree — test is broken")
	}
}

// TestMiddleboxViewByteParity pins form-blindness: the same segment in view
// form and in materialized-byte form must come out byte-identical, with the
// same stats, so view/byte differential runs stay in lockstep.
func TestMiddleboxViewByteParity(t *testing.T) {
	run := func(materialize bool) ([]byte, MiddleboxStats) {
		fx := newMBFixture(t, MiddleboxConfig{TTLClamp: 7, WindowClamp: 512, RSTProb: 1}, 11)
		f := fx.tcpFrame(t, packet.FlagACK, []byte("parity"))
		if materialize {
			f = &Frame{ID: f.ID, Born: f.Born, Data: append([]byte(nil), f.Materialize()...)}
		}
		fx.mb.Input(f)
		if len(fx.sink.frames) != 2 {
			t.Fatalf("delivered %d, want rewritten data + RST", len(fx.sink.frames))
		}
		var out []byte
		for _, df := range fx.sink.frames {
			out = append(out, df.Materialize()...)
		}
		return out, fx.mb.MiddleboxStats()
	}
	viewOut, viewStats := run(false)
	byteOut, byteStats := run(true)
	if string(viewOut) != string(byteOut) {
		t.Fatal("view-form and byte-form frames produced different wire bytes")
	}
	if viewStats != byteStats {
		t.Fatalf("stats diverged: view %+v, bytes %+v", viewStats, byteStats)
	}
}
