package netem

import (
	"net/netip"
	"testing"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

// tcpFrame builds a byte-form frame addressed to dst, enough for the
// router's PeekFlow classification.
func tcpFrame(t *testing.T, id uint64, dst netip.Addr) *Frame {
	t.Helper()
	raw, err := packet.EncodeTCP(
		&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: dst},
		&packet.TCPHeader{SrcPort: 5000, DstPort: 80, Seq: uint32(id), Flags: packet.FlagACK}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Frame{ID: id, Data: raw}
}

func TestRouterForwardsByDestination(t *testing.T) {
	a := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	b := netip.AddrFrom4([4]byte{10, 0, 2, 1})
	r := NewRouter()
	loop := sim.NewLoop()
	sa, sb := &collector{loop: loop}, &collector{loop: loop}
	r.AddRoute(a, r.AddGroup(sa))
	r.AddRoute(b, r.AddGroup(sb))

	r.Input(tcpFrame(t, 1, a))
	r.Input(tcpFrame(t, 2, b))
	r.Input(tcpFrame(t, 3, a))
	if got := sa.ids(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("route a received %v, want [1 3]", got)
	}
	if got := sb.ids(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("route b received %v, want [2]", got)
	}
	if st := r.Stats(); st.In != 3 || st.Out != 3 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	r := NewRouter()
	r.AddRoute(netip.AddrFrom4([4]byte{10, 0, 1, 1}), r.AddGroup(Discard))
	// No route for this destination.
	r.Input(tcpFrame(t, 1, netip.AddrFrom4([4]byte{10, 9, 9, 9})))
	// Unclassifiable bytes.
	r.Input(&Frame{ID: 2, Data: []byte{0xde, 0xad}})
	if st := r.Stats(); st.In != 2 || st.Dropped != 2 || st.Out != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouterSpraysRoundRobin(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	r := NewRouter()
	loop := sim.NewLoop()
	p0, p1, p2 := &collector{loop: loop}, &collector{loop: loop}, &collector{loop: loop}
	r.AddRoute(dst, r.AddGroup(p0, p1, p2))
	for i := uint64(1); i <= 9; i++ {
		r.Input(tcpFrame(t, i, dst))
	}
	for i, c := range []*collector{p0, p1, p2} {
		ids := c.ids()
		if len(ids) != 3 {
			t.Fatalf("port %d received %d frames, want 3", i, len(ids))
		}
		for j, id := range ids {
			if want := uint64(i + 1 + 3*j); id != want {
				t.Fatalf("port %d frame %d = id %d, want %d", i, j, id, want)
			}
		}
	}
}

func TestRouterSprayCounterSharedAcrossFlows(t *testing.T) {
	// The spray counter belongs to the port group, not the flow: a frame
	// from another flow advances it, so the next frame of the first flow
	// lands on a different physical port — the mechanism behind
	// cross-traffic-induced probe reordering.
	dst := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	r := NewRouter()
	loop := sim.NewLoop()
	p0, p1 := &collector{loop: loop}, &collector{loop: loop}
	r.AddRoute(dst, r.AddGroup(p0, p1))

	mk := func(id uint64, sport uint16) *Frame {
		raw, err := packet.EncodeTCP(
			&packet.IPv4Header{Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: dst},
			&packet.TCPHeader{SrcPort: sport, DstPort: 80, Seq: uint32(id), Flags: packet.FlagACK}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return &Frame{ID: id, Data: raw}
	}
	r.Input(mk(1, 5000)) // flow A -> p0
	r.Input(mk(2, 6000)) // flow B -> p1
	r.Input(mk(3, 5000)) // flow A again -> p0 (counter advanced by B)
	if got := p0.ids(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("p0 received %v, want [1 3]", got)
	}
	if got := p1.ids(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("p1 received %v, want [2]", got)
	}
}

func TestRouterReinit(t *testing.T) {
	dst := netip.AddrFrom4([4]byte{10, 0, 1, 1})
	r := NewRouter()
	r.AddRoute(dst, r.AddGroup(Discard))
	r.Input(tcpFrame(t, 1, dst))
	r.Reinit()
	if st := r.Stats(); st != (Counters{}) {
		t.Fatalf("stats after Reinit = %+v", st)
	}
	// Old routes are gone: the same destination now drops.
	r.Input(tcpFrame(t, 2, dst))
	if st := r.Stats(); st.Dropped != 1 {
		t.Fatalf("stale route survived Reinit: %+v", st)
	}
	// And the router is fully rebuildable.
	sink := &collector{loop: sim.NewLoop()}
	r.AddRoute(dst, r.AddGroup(sink))
	r.Input(tcpFrame(t, 3, dst))
	if got := sink.ids(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("rebuilt route received %v", got)
	}
}

func TestRouterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty group", func() { NewRouter().AddGroup() })
	expectPanic("bad group index", func() {
		NewRouter().AddRoute(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 0)
	})
}
