package netem

import (
	"net/netip"
	"testing"

	"reorder/internal/packet"
	"reorder/internal/sim"
)

func dataFrame(t *testing.T, id uint64, payload int, df bool) *Frame {
	t.Helper()
	ip := &packet.IPv4Header{
		Src: netip.AddrFrom4([4]byte{10, 0, 1, 1}),
		Dst: netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		ID:  uint16(id),
	}
	if df {
		ip.Flags = packet.FlagDF
	}
	raw, err := packet.EncodeTCP(ip,
		&packet.TCPHeader{SrcPort: 80, DstPort: 4000, Seq: 1, Flags: packet.FlagACK},
		make([]byte, payload))
	if err != nil {
		t.Fatal(err)
	}
	return &Frame{ID: id, Data: raw}
}

func TestFragmenterSplitsOversized(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	fr := NewFragmenter(576, sink)
	fr.Input(dataFrame(t, 1, 1400, false))
	if len(sink.frames) < 3 {
		t.Fatalf("emitted %d fragments, want >= 3", len(sink.frames))
	}
	for _, f := range sink.frames {
		if f.ID != 1 {
			t.Fatal("fragment lost the original frame ID")
		}
		if len(f.Data) > 576 {
			t.Fatalf("fragment %d bytes over MTU", len(f.Data))
		}
	}
	// Reassembling the emitted fragments restores the datagram.
	r := packet.NewReassembler()
	var whole []byte
	for _, f := range sink.frames {
		out, err := r.Input(f.Data)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			whole = out
		}
	}
	p, err := packet.Decode(whole)
	if err != nil || len(p.Payload) != 1400 {
		t.Fatalf("reassembly: %v, payload %d", err, len(p.Payload))
	}
}

func TestFragmenterPassesSmall(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	fr := NewFragmenter(576, sink)
	f := dataFrame(t, 2, 100, true)
	fr.Input(f)
	if len(sink.frames) != 1 || sink.frames[0] != f {
		t.Fatal("small frame not passed through untouched")
	}
}

func TestFragmenterDropsDFOversized(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	fr := NewFragmenter(576, sink)
	fr.Input(dataFrame(t, 3, 1400, true))
	if len(sink.frames) != 0 {
		t.Fatal("DF-marked oversized frame forwarded")
	}
	if fr.Stats().Dropped != 1 {
		t.Fatalf("stats: %+v", fr.Stats())
	}
}
