package netem

import (
	"testing"
	"time"

	"reorder/internal/sim"
)

func TestScheduleAppliesInOrder(t *testing.T) {
	loop := sim.NewLoop()
	s := NewSchedule(loop)
	var got []int
	record := func(arg any) { got = append(got, arg.(int)) }
	// Added out of order; equal-time steps must keep insertion order.
	s.Add(sim.Time(30*time.Microsecond), record, 3)
	s.Add(sim.Time(10*time.Microsecond), record, 1)
	s.Add(sim.Time(20*time.Microsecond), record, 20)
	s.Add(sim.Time(20*time.Microsecond), record, 21)
	s.Start()
	loop.RunUntilIdle(0)
	want := []int{1, 20, 21, 3}
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v", got, want)
		}
	}
	if s.Applied() != 4 || s.Len() != 4 {
		t.Fatalf("Applied=%d Len=%d, want 4/4", s.Applied(), s.Len())
	}
}

func TestSchedulePastStepsClampToNow(t *testing.T) {
	loop := sim.NewLoop()
	loop.RunFor(time.Millisecond) // advance the clock past the step times
	s := NewSchedule(loop)
	fired := 0
	s.Add(sim.Time(10*time.Microsecond), func(any) { fired++ }, nil)
	s.Start()
	loop.RunUntilIdle(0)
	if fired != 1 {
		t.Fatalf("past-dated step fired %d times, want 1", fired)
	}
}

func TestScheduleReinitReuse(t *testing.T) {
	loop := sim.NewLoop()
	s := NewSchedule(loop)
	count := 0
	s.Add(sim.Time(time.Microsecond), func(any) { count++ }, nil)
	s.Start()
	loop.RunUntilIdle(0)
	if count != 1 || s.Applied() != 1 {
		t.Fatalf("first run: count=%d applied=%d", count, s.Applied())
	}

	loop2 := sim.NewLoop()
	s.Reinit(loop2)
	if s.Len() != 0 || s.Applied() != 0 {
		t.Fatalf("Reinit left Len=%d Applied=%d", s.Len(), s.Applied())
	}
	s.Add(sim.Time(time.Microsecond), func(any) { count += 10 }, nil)
	s.Add(sim.Time(2*time.Microsecond), func(any) { count += 100 }, nil)
	s.Start()
	loop2.RunUntilIdle(0)
	if count != 111 || s.Applied() != 2 {
		t.Fatalf("reused schedule: count=%d applied=%d", count, s.Applied())
	}
}

// TestScheduleRetargetsLink is the tentpole mechanism end to end: a timer
// mutation changes a live link's service rate mid-flow, so frames sent
// after the edge drain at the new rate.
func TestScheduleRetargetsLink(t *testing.T) {
	loop := sim.NewLoop()
	sink := &collector{loop: loop}
	// 8 Mbps = 1 byte/µs; a 100-byte frame serializes in 100µs.
	l := NewLink(loop, LinkConfig{RateBps: 8_000_000}, sink)
	s := NewSchedule(loop)
	s.Add(sim.Time(500*time.Microsecond), func(any) { l.SetRate(800_000) }, nil)
	s.Start()

	l.Input(frame(1, 100))
	loop.RunFor(time.Millisecond) // frame 1 done at 100µs; rate edge at 500µs
	l.Input(frame(2, 100))        // now 1000µs: serializes at 0.1 byte/µs
	loop.RunUntilIdle(0)
	if len(sink.times) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(sink.times))
	}
	if sink.times[0] != sim.Time(100*time.Microsecond) {
		t.Errorf("pre-edge frame arrived at %v, want 100µs", sink.times[0])
	}
	if want := sim.Time(2 * time.Millisecond); sink.times[1] != want {
		t.Errorf("post-edge frame arrived at %v, want %v (throttled rate)", sink.times[1], want)
	}
	if l.Rate() != 800_000 {
		t.Errorf("Rate() = %d after edge, want 800000", l.Rate())
	}
}

// TestScheduleZeroMagnitudeIsInert pins the differential-test edge: steps
// that reassert the current value fire (Applied counts them) but change no
// delivery time.
func TestScheduleZeroMagnitudeIsInert(t *testing.T) {
	run := func(withSchedule bool) []sim.Time {
		loop := sim.NewLoop()
		sink := &collector{loop: loop}
		l := NewLink(loop, LinkConfig{RateBps: 8_000_000, QueueLimit: 4}, sink)
		if withSchedule {
			s := NewSchedule(loop)
			for i := 1; i <= 5; i++ {
				at := sim.Time(time.Duration(i*37) * time.Microsecond)
				s.Add(at, func(any) { l.SetRate(l.Rate()) }, nil)
				s.Add(at, func(any) { l.SetQueueLimit(l.QueueLimit()) }, nil)
			}
			s.Start()
		}
		for i := uint64(1); i <= 8; i++ {
			l.Input(frame(i, 64))
		}
		loop.RunUntilIdle(0)
		return append([]sim.Time(nil), sink.times...)
	}
	plain, scheduled := run(false), run(true)
	if len(plain) != len(scheduled) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(plain), len(scheduled))
	}
	for i := range plain {
		if plain[i] != scheduled[i] {
			t.Fatalf("delivery %d: %v with zero-magnitude schedule, %v without", i, scheduled[i], plain[i])
		}
	}
}
