package netem

import (
	"time"

	"reorder/internal/sim"
)

// TrunkConfig describes a striped trunk: N parallel L2 links over which a
// router sprays packets per-packet round-robin (§IV-C). Each member link
// carries background traffic, modeled as a random queue backlog sampled per
// packet; a packet assigned to a deeper queue than its predecessor can leave
// later than a younger packet on a shallower queue, producing exactly the
// gap-dependent reordering of Fig 7: since queues drain at a constant rate,
// a pair separated by gap g is only exchanged when the backlog imbalance
// exceeds g's worth of drain time.
type TrunkConfig struct {
	// FanOut is the number of parallel member links (default 2).
	FanOut int
	// RateBps is each member link's line rate in bits per second
	// (default 622 Mbps, an OC-12, a plausible 2002 exchange-point trunk).
	RateBps int64
	// PropDelay is the common propagation delay of the members.
	PropDelay time.Duration
	// BurstProb is the probability that a packet finds a background burst
	// queued ahead of it on its member link.
	BurstProb float64
	// MeanBurstBytes is the mean backlog (exponentially distributed) when a
	// burst is present.
	MeanBurstBytes float64
}

func (c *TrunkConfig) setDefaults() {
	if c.FanOut <= 0 {
		c.FanOut = 2
	}
	if c.RateBps <= 0 {
		c.RateBps = 622_000_000
	}
}

// StripedTrunk models the striped parallel links. Packets are assigned
// round-robin; each member link is FIFO (a younger packet can never overtake
// an older one on the same member), so all reordering comes from cross-
// member queue imbalance.
type StripedTrunk struct {
	cfg   TrunkConfig
	loop  *sim.Loop
	next  Node
	rng   *sim.Rand
	stats Counters

	nextMember int
	// lastDeparture enforces per-member FIFO.
	lastDeparture []sim.Time
	// lastArrival tracks downstream arrival order to count exchanges.
	lastArrivalTime sim.Time
	deliverFn       func(any)
}

// NewStripedTrunk returns a striped trunk feeding next.
func NewStripedTrunk(loop *sim.Loop, cfg TrunkConfig, rng *sim.Rand, next Node) *StripedTrunk {
	cfg.setDefaults()
	t := &StripedTrunk{
		cfg: cfg, loop: loop, next: next, rng: rng,
		lastDeparture: make([]sim.Time, cfg.FanOut),
	}
	t.deliverFn = func(arg any) {
		t.stats.Out++
		t.next.Input(arg.(*Frame))
	}
	return t
}

// Reinit reconfigures a pooled trunk exactly as NewStripedTrunk would,
// reusing the struct, its cached callback and (capacity permitting) its
// per-member state slice.
func (t *StripedTrunk) Reinit(cfg TrunkConfig, rng *sim.Rand, next Node) {
	cfg.setDefaults()
	t.cfg, t.rng, t.next = cfg, rng, next
	t.stats = Counters{}
	t.nextMember = 0
	t.lastArrivalTime = 0
	t.lastDeparture = resetTimes(t.lastDeparture, cfg.FanOut)
}

// resetTimes returns a zeroed sim.Time slice of length n, reusing s's
// storage when it is large enough.
func resetTimes(s []sim.Time, n int) []sim.Time {
	if cap(s) < n {
		return make([]sim.Time, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Stats returns a snapshot of the trunk's counters. Swapped counts frames
// that arrived downstream earlier than a frame injected before them.
func (t *StripedTrunk) Stats() Counters { return t.stats }

// txTime returns the serialization delay of n bytes on one member link.
func (t *StripedTrunk) txTime(n int) time.Duration {
	return time.Duration(int64(n) * 8 * int64(time.Second) / t.cfg.RateBps)
}

// backlogDelay samples the drain time of the background backlog a packet
// finds ahead of it on its member link.
func (t *StripedTrunk) backlogDelay() time.Duration {
	if !t.rng.Bool(t.cfg.BurstProb) {
		return 0
	}
	bytes := t.rng.ExpFloat64() * t.cfg.MeanBurstBytes
	return time.Duration(bytes * 8 * float64(time.Second) / float64(t.cfg.RateBps))
}

// Input implements Node.
func (t *StripedTrunk) Input(f *Frame) {
	t.stats.In++
	m := t.nextMember
	t.nextMember = (t.nextMember + 1) % t.cfg.FanOut

	now := t.loop.Now()
	// The packet waits behind the sampled background backlog, then
	// serializes; per-member FIFO means it also cannot depart before the
	// member's previous packet finished.
	start := now.Add(t.backlogDelay())
	if t.lastDeparture[m] > start {
		start = t.lastDeparture[m]
	}
	departure := start.Add(t.txTime(f.Len()))
	t.lastDeparture[m] = departure
	arrival := departure.Add(t.cfg.PropDelay)
	t.loop.AtArg(arrival, t.deliverFn, f)
	// Exchange accounting: this frame will arrive before some earlier frame
	// iff its arrival precedes the latest arrival already scheduled.
	if arrival < t.lastArrivalTime {
		t.stats.Swapped++
	} else {
		t.lastArrivalTime = arrival
	}
}
