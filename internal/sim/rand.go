package sim

import "math/rand/v2"

// Rand is the deterministic random source used by every stochastic component
// in the simulation. It wraps math/rand/v2 with a fixed, explicit seed so
// that experiments are exactly reproducible, and adds the small distribution
// helpers the network model needs.
//
// The PCG state and the rand.Rand wrapper are embedded by value, so a Rand
// is a single allocation — and zero allocations when reinitialized in place
// via Reseed or ForkInto, which is what lets pooled network elements rebuild
// their streams without touching the heap. Because r holds an interior
// pointer to pcg, a Rand must not be copied; use it through the pointer
// NewRand returns.
type Rand struct {
	pcg rand.PCG
	r   rand.Rand
}

// NewRand returns a Rand seeded from the two words. Components derive their
// own streams via Fork so that adding a component does not perturb the draws
// seen by others.
func NewRand(seed1, seed2 uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed1, seed2)
	return r
}

// Reseed rewinds the stream to the state NewRand(seed1, seed2) produces,
// without allocating. Reused scenario arenas call it so a reset run draws
// exactly the sequence a fresh construction would.
func (r *Rand) Reseed(seed1, seed2 uint64) {
	r.pcg.Seed(seed1, seed2)
	r.r = *rand.New(&r.pcg)
}

// Fork returns an independent stream derived from r and a label. Forking is
// deterministic: the same parent seed and label always produce the same
// child stream.
func (r *Rand) Fork(label uint64) *Rand {
	return NewRand(r.r.Uint64(), label^forkMix)
}

// ForkInto reseeds child to the exact stream Fork(label) would return,
// consuming the same single draw from r and allocating nothing. Pooled
// topology elements rebuild their per-scenario streams this way; a nil
// child falls back to Fork.
func (r *Rand) ForkInto(child *Rand, label uint64) *Rand {
	if child == nil {
		return r.Fork(label)
	}
	child.Reseed(r.r.Uint64(), label^forkMix)
	return child
}

// forkMix decorrelates fork labels from the raw seed space.
const forkMix = 0x9e3779b97f4a7c15

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// IntN returns a uniform value in [0,n). It panics if n <= 0.
func (r *Rand) IntN(n int) int { return r.r.IntN(n) }

// Uint16 returns a uniform 16-bit value.
func (r *Rand) Uint16() uint16 { return uint16(r.r.Uint64()) }

// Uint32 returns a uniform 32-bit value.
func (r *Rand) Uint32() uint32 { return r.r.Uint32() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 { return r.r.ExpFloat64() }

// NormFloat64 returns a standard normal value.
func (r *Rand) NormFloat64() float64 { return r.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }
