// Package sim implements a deterministic discrete-event simulator used as
// the time base for every experiment in this repository.
//
// The simulator models virtual time as nanoseconds since the start of a run.
// Components schedule callbacks on a Loop; the Loop executes them in
// timestamp order (ties broken by scheduling order), advancing the virtual
// clock as it goes. Nothing in the simulator sleeps or consults the wall
// clock, so a run that models 20 days of probing completes in milliseconds
// and is exactly reproducible given the same seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. The zero Time is the moment the Loop was created.
type Time int64

// Add returns the Time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the elapsed duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as an elapsed duration, e.g. "1.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// A Timer is a handle to a scheduled callback. It can be stopped before it
// fires. The zero Timer is inert.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the callback
// from firing. Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && t.ev != nil && t.ev.fn != nil }

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Loop is a discrete-event scheduler. It is not safe for concurrent use;
// the entire simulation, including all network elements and the prober,
// runs single-threaded on one Loop.
type Loop struct {
	now    Time
	events eventHeap
	seq    uint64
	ran    uint64
}

// NewLoop returns a Loop with the clock at time zero and no pending events.
func NewLoop() *Loop { return &Loop{} }

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Len returns the number of pending events (including stopped timers that
// have not yet been drained).
func (l *Loop) Len() int { return len(l.events) }

// Processed returns the total number of callbacks executed so far.
func (l *Loop) Processed() uint64 { return l.ran }

// Schedule arranges for fn to run after delay d of virtual time. A negative
// delay is treated as zero (the event runs at the current instant, after any
// earlier-scheduled events at the same instant). It returns a Timer that can
// cancel the callback.
func (l *Loop) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the present.
func (l *Loop) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < l.now {
		t = l.now
	}
	ev := &event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, ev)
	return &Timer{ev: ev}
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. Cancelled events are
// skipped without being counted.
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		ev := heap.Pop(&l.events).(*event)
		if ev.fn == nil {
			continue // cancelled
		}
		l.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		l.ran++
		return true
	}
	return false
}

// RunUntil executes events up to and including virtual time t, then advances
// the clock to exactly t. Events scheduled during execution are honored if
// they fall within the horizon.
func (l *Loop) RunUntil(t Time) {
	for {
		ev := l.peek()
		if ev == nil || ev.at > t {
			break
		}
		l.Step()
	}
	if l.now < t {
		l.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now.Add(d)) }

// RunUntilIdle executes events until the queue is empty. It panics after
// maxEvents callbacks as a guard against runaway feedback loops; pass 0 for
// the default of 100 million.
func (l *Loop) RunUntilIdle(maxEvents uint64) {
	if maxEvents == 0 {
		maxEvents = 100_000_000
	}
	start := l.ran
	for l.Step() {
		if l.ran-start > maxEvents {
			panic(fmt.Sprintf("sim: RunUntilIdle exceeded %d events at t=%s", maxEvents, l.now))
		}
	}
}

// NextEventAt returns the timestamp of the earliest pending event, if any.
// Synchronous drivers (the probe transport) use it to decide whether pumping
// the loop can make progress before a deadline.
func (l *Loop) NextEventAt() (Time, bool) {
	ev := l.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

func (l *Loop) peek() *event {
	for len(l.events) > 0 {
		ev := l.events[0]
		if ev.fn != nil {
			return ev
		}
		heap.Pop(&l.events)
	}
	return nil
}
