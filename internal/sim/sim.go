// Package sim implements a deterministic discrete-event simulator used as
// the time base for every experiment in this repository.
//
// The simulator models virtual time as nanoseconds since the start of a run.
// Components schedule callbacks on a Loop; the Loop executes them in
// timestamp order (ties broken by scheduling order), advancing the virtual
// clock as it goes. Nothing in the simulator sleeps or consults the wall
// clock, so a run that models 20 days of probing completes in milliseconds
// and is exactly reproducible given the same seed.
//
// The event queue is a slice-backed inline 4-ary min-heap of event values:
// scheduling allocates nothing on the steady-state path, which matters when
// a campaign pumps millions of events per second through the probe engine.
// Timer handles are generation-counted indexes into a free-listed slot
// table, so cancelling is O(1) without keeping per-event pointers alive.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds since the start
// of the simulation. The zero Time is the moment the Loop was created.
type Time int64

// Add returns the Time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the elapsed duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time as an elapsed duration, e.g. "1.5ms".
func (t Time) String() string { return time.Duration(t).String() }

// A Timer is a handle to a scheduled callback. It can be stopped before it
// fires. The zero Timer is inert. Timers are small values; copying them is
// fine, and a Timer outliving its event (or a Loop.Reset) is harmlessly
// inert because its generation no longer matches.
type Timer struct {
	l    *Loop
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the call prevented the callback
// from firing. Stopping an already-fired or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if t.l == nil {
		return false
	}
	s := &t.l.slots[t.slot]
	if s.gen != t.gen || s.heapIdx < 0 {
		return false
	}
	ev := &t.l.events[s.heapIdx]
	if ev.fn == nil && ev.afn == nil {
		return false
	}
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	t.l.dead++
	t.l.maybeCompact()
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	if t.l == nil {
		return false
	}
	s := &t.l.slots[t.slot]
	if s.gen != t.gen || s.heapIdx < 0 {
		return false
	}
	ev := &t.l.events[s.heapIdx]
	return ev.fn != nil || ev.afn != nil
}

// event is one scheduled callback. Exactly one of fn and afn is non-nil for
// a live event; both nil marks a cancelled event awaiting drain. afn+arg is
// the allocation-free form: a pointer-shaped arg boxed into an interface
// does not allocate, so elements that forward frames can schedule with one
// long-lived callback instead of a fresh closure per frame.
type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for events at the same instant
	fn   func()
	afn  func(any)
	arg  any
	slot int32
}

// slotState backs one Timer handle. heapIdx tracks where the event
// currently sits in the heap (-1 once it has fired or drained); gen
// invalidates stale handles when the slot is reused.
type slotState struct {
	heapIdx int32
	gen     uint32
}

// Loop is a discrete-event scheduler. It is not safe for concurrent use;
// the entire simulation, including all network elements and the prober,
// runs single-threaded on one Loop.
type Loop struct {
	now    Time
	events []event // inline 4-ary min-heap ordered by (at, seq)
	seq    uint64
	ran    uint64
	dead   int // cancelled events still occupying heap entries

	resched     uint64
	compactions uint64
	peakHeap    int

	slots    []slotState
	freeSlot []int32
}

// LoopStats is a snapshot of the loop's internal counters, exposed for the
// telemetry layer: callbacks executed, in-place timer reschedules, dead-entry
// heap compactions, and the deepest heap observed. All are cumulative since
// the last Reset.
type LoopStats struct {
	Executed     uint64
	Rescheduled  uint64
	Compactions  uint64
	PeakHeapSize int
}

// Stats returns the loop's counters since the last Reset.
func (l *Loop) Stats() LoopStats {
	return LoopStats{
		Executed:     l.ran,
		Rescheduled:  l.resched,
		Compactions:  l.compactions,
		PeakHeapSize: l.peakHeap,
	}
}

// NewLoop returns a Loop with the clock at time zero and no pending events.
func NewLoop() *Loop { return &Loop{} }

// Reset returns the loop to its initial state — clock at zero, no pending
// events, counters cleared — while keeping the heap and slot-table capacity
// for reuse. Every outstanding Timer is invalidated (its slot generation is
// bumped), so handles from the previous run can never cancel events of the
// next one. A Reset loop is indistinguishable from a NewLoop one.
func (l *Loop) Reset() {
	for i := range l.events {
		ev := &l.events[i]
		l.slots[ev.slot].gen++
		ev.fn, ev.afn, ev.arg = nil, nil, nil
	}
	l.events = l.events[:0]
	l.freeSlot = l.freeSlot[:0]
	for i := range l.slots {
		l.slots[i].heapIdx = -1
		l.freeSlot = append(l.freeSlot, int32(i))
	}
	l.now, l.seq, l.ran, l.dead = 0, 0, 0, 0
	l.resched, l.compactions, l.peakHeap = 0, 0, 0
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Len returns the number of live pending events. Stopped timers whose heap
// entries have not yet been drained are not counted: Len answers "how much
// work is still scheduled", which is what idle detection and pending-event
// assertions mean by it.
func (l *Loop) Len() int { return len(l.events) - l.dead }

// Processed returns the total number of callbacks executed so far.
func (l *Loop) Processed() uint64 { return l.ran }

// Schedule arranges for fn to run after delay d of virtual time. A negative
// delay is treated as zero (the event runs at the current instant, after any
// earlier-scheduled events at the same instant). It returns a Timer that can
// cancel the callback.
func (l *Loop) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// ScheduleArg is Schedule for a long-lived callback taking an argument; see
// AtArg.
func (l *Loop) ScheduleArg(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	return l.AtArg(l.now.Add(d), fn, arg)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the present.
func (l *Loop) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	return l.push(t, fn, nil, nil)
}

// AtArg arranges for fn(arg) to run at absolute virtual time t. Unlike At
// with a fresh closure, a long-lived fn plus a pointer-shaped arg schedules
// without allocating — the fast path network elements use to forward frames.
func (l *Loop) AtArg(t Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: AtArg called with nil callback")
	}
	return l.push(t, nil, fn, arg)
}

// Reschedule moves a timer to fire fn at absolute time t instead, re-sifting
// the existing heap entry in place — one sift instead of the lazy cancel, the
// dead-entry drain and the fresh push that Stop+At cost. If tm no longer has
// a heap entry (it fired, drained, or belongs to a previous Reset), fn is
// simply scheduled fresh. The returned Timer replaces tm; older copies of tm
// are invalidated exactly as Stop+At would leave them, and the rescheduled
// event takes a fresh sequence number, so execution order is identical to
// tm.Stop() followed by At(t, fn).
func (l *Loop) Reschedule(tm Timer, t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: Reschedule called with nil callback")
	}
	return l.reschedule(tm, t, fn, nil, nil)
}

// RescheduleArg is Reschedule for the allocation-free callback form of
// AtArg.
func (l *Loop) RescheduleArg(tm Timer, t Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: RescheduleArg called with nil callback")
	}
	return l.reschedule(tm, t, nil, fn, arg)
}

// reschedule retargets tm's heap entry when one still exists (live or
// stopped-but-undrained), falling back to a plain push.
func (l *Loop) reschedule(tm Timer, t Time, fn func(), afn func(any), arg any) Timer {
	if tm.l != l {
		return l.push(t, fn, afn, arg)
	}
	s := &l.slots[tm.slot]
	if s.gen != tm.gen || s.heapIdx < 0 {
		return l.push(t, fn, afn, arg)
	}
	if t < l.now {
		t = l.now
	}
	ev := &l.events[s.heapIdx]
	if ev.fn == nil && ev.afn == nil {
		l.dead-- // reviving a stopped entry in place
	}
	s.gen++ // invalidate stale handles, as Stop+At would
	ev.at, ev.seq = t, l.seq
	l.seq++
	ev.fn, ev.afn, ev.arg = fn, afn, arg
	l.siftDown(s.heapIdx)
	l.siftUp(s.heapIdx)
	l.resched++
	return Timer{l: l, slot: tm.slot, gen: s.gen}
}

// maybeCompact rebuilds the heap without its cancelled entries once they
// outnumber the live ones, so long-running simulations that stop many timers
// (delayed-ACK races, retransmission cancels) stop paying sift comparisons
// for dead weight. Rebuilding never changes execution order: pop order is a
// pure function of the (at, seq) keys, which compaction preserves.
func (l *Loop) maybeCompact() {
	if l.dead < 64 || l.dead*2 < len(l.events) {
		return
	}
	l.compactions++
	kept := l.events[:0]
	for i := range l.events {
		ev := &l.events[i]
		if ev.fn == nil && ev.afn == nil {
			s := &l.slots[ev.slot]
			s.heapIdx = -1
			s.gen++
			l.freeSlot = append(l.freeSlot, ev.slot)
			continue
		}
		kept = append(kept, *ev)
	}
	tail := l.events[len(kept):]
	for i := range tail {
		tail[i] = event{} // release fn/arg references
	}
	l.events = kept
	l.dead = 0
	for i := range kept {
		l.slots[kept[i].slot].heapIdx = int32(i)
	}
	for i := int32(len(kept)-2) / heapArity; i >= 0; i-- {
		l.siftDown(i)
	}
}

// push allocates a slot and sifts the new event into the heap.
func (l *Loop) push(t Time, fn func(), afn func(any), arg any) Timer {
	if t < l.now {
		t = l.now
	}
	var slot int32
	if n := len(l.freeSlot); n > 0 {
		slot = l.freeSlot[n-1]
		l.freeSlot = l.freeSlot[:n-1]
	} else {
		slot = int32(len(l.slots))
		l.slots = append(l.slots, slotState{})
	}
	i := int32(len(l.events))
	l.events = append(l.events, event{at: t, seq: l.seq, fn: fn, afn: afn, arg: arg, slot: slot})
	l.seq++
	if n := len(l.events); n > l.peakHeap {
		l.peakHeap = n
	}
	l.slots[slot].heapIdx = i
	l.siftUp(i)
	return Timer{l: l, slot: slot, gen: l.slots[slot].gen}
}

// less orders events by timestamp, then scheduling order. The key is unique
// per event, so heap pop order is a total order identical to the previous
// container/heap implementation's.
func (l *Loop) less(i, j int32) bool {
	a, b := &l.events[i], &l.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (l *Loop) swap(i, j int32) {
	l.events[i], l.events[j] = l.events[j], l.events[i]
	l.slots[l.events[i].slot].heapIdx = i
	l.slots[l.events[j].slot].heapIdx = j
}

const heapArity = 4

func (l *Loop) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !l.less(i, parent) {
			break
		}
		l.swap(i, parent)
		i = parent
	}
}

func (l *Loop) siftDown(i int32) {
	n := int32(len(l.events))
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if l.less(c, min) {
				min = c
			}
		}
		if !l.less(min, i) {
			return
		}
		l.swap(i, min)
		i = min
	}
}

// popMin removes the earliest event without copying it out; callers that
// need its fields read them off the root first. Releases the event's slot.
func (l *Loop) popMin() {
	root := &l.events[0]
	if root.fn == nil && root.afn == nil {
		l.dead-- // draining a cancelled entry
	}
	slot := root.slot
	n := int32(len(l.events)) - 1
	if n > 0 {
		l.events[0] = l.events[n]
		l.slots[l.events[0].slot].heapIdx = 0
	}
	// Release only the reference-holding fields of the vacated entry; the
	// stale scalars are overwritten by the next push into this index.
	l.events[n].fn, l.events[n].afn, l.events[n].arg = nil, nil, nil
	l.events = l.events[:n]
	if n > 0 {
		l.siftDown(0)
	}
	s := &l.slots[slot]
	s.heapIdx = -1
	s.gen++
	l.freeSlot = append(l.freeSlot, slot)
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was executed. Cancelled events are
// skipped without being counted.
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		root := &l.events[0]
		at, fn, afn, arg := root.at, root.fn, root.afn, root.arg
		l.popMin()
		if fn == nil && afn == nil {
			continue // cancelled
		}
		l.now = at
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		l.ran++
		return true
	}
	return false
}

// StepBefore executes the earliest pending event if it is due at or before
// t, reporting whether one ran. It is the fused peek+Step synchronous
// drivers pump the loop with — one heap-root inspection per event instead
// of two.
func (l *Loop) StepBefore(t Time) bool {
	for len(l.events) > 0 {
		ev := &l.events[0]
		if ev.fn == nil && ev.afn == nil {
			l.popMin() // drain cancelled entries at the root
			continue
		}
		if ev.at > t {
			return false
		}
		return l.Step()
	}
	return false
}

// RunUntil executes events up to and including virtual time t, then advances
// the clock to exactly t. Events scheduled during execution are honored if
// they fall within the horizon.
func (l *Loop) RunUntil(t Time) {
	for l.StepBefore(t) {
	}
	if l.now < t {
		l.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now.Add(d)) }

// RunUntilIdle executes events until the queue is empty. It panics after
// maxEvents callbacks as a guard against runaway feedback loops; pass 0 for
// the default of 100 million.
func (l *Loop) RunUntilIdle(maxEvents uint64) {
	if maxEvents == 0 {
		maxEvents = 100_000_000
	}
	start := l.ran
	for l.Step() {
		if l.ran-start > maxEvents {
			panic(fmt.Sprintf("sim: RunUntilIdle exceeded %d events at t=%s", maxEvents, l.now))
		}
	}
}

// NextEventAt returns the timestamp of the earliest pending event, if any.
// Synchronous drivers (the probe transport) use it to decide whether pumping
// the loop can make progress before a deadline.
func (l *Loop) NextEventAt() (Time, bool) { return l.peek() }

// peek returns the timestamp of the earliest live event, draining cancelled
// events from the head of the heap as it looks.
func (l *Loop) peek() (Time, bool) {
	for len(l.events) > 0 {
		ev := &l.events[0]
		if ev.fn != nil || ev.afn != nil {
			return ev.at, true
		}
		l.popMin()
	}
	return 0, false
}
