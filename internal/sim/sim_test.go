package sim

import (
	"testing"
	"time"
)

func TestLoopStartsAtZero(t *testing.T) {
	l := NewLoop()
	if l.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", l.Now())
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	l := NewLoop()
	var fired Time
	l.Schedule(5*time.Millisecond, func() { fired = l.Now() })
	if !l.Step() {
		t.Fatal("Step() = false, want true")
	}
	if fired != Time(5*time.Millisecond) {
		t.Fatalf("fired at %v, want 5ms", fired)
	}
	if l.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", l.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	l := NewLoop()
	var order []int
	l.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	l.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	l.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	l.RunUntilIdle(0)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	l := NewLoop()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	l.RunUntilIdle(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO 0..9", order)
		}
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	l := NewLoop()
	l.RunUntil(Time(time.Second))
	fired := false
	l.Schedule(-time.Hour, func() { fired = true })
	l.Step()
	if !fired {
		t.Fatal("event with negative delay never fired")
	}
	if l.Now() != Time(time.Second) {
		t.Fatalf("Now() = %v, clock must not go backwards", l.Now())
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop()
	fired := false
	tm := l.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("Pending() = false before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	l.RunUntilIdle(0)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Pending() {
		t.Fatal("Pending() = true after Stop")
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop() = true")
	}
	if tm.Pending() {
		t.Fatal("zero Timer Pending() = true")
	}
}

func TestRunUntilAdvancesToHorizon(t *testing.T) {
	l := NewLoop()
	l.Schedule(10*time.Millisecond, func() {})
	l.RunUntil(Time(5 * time.Millisecond))
	if l.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", l.Now())
	}
	if l.Len() != 1 {
		t.Fatalf("event beyond horizon was consumed")
	}
	l.RunFor(10 * time.Millisecond)
	if l.Now() != Time(15*time.Millisecond) {
		t.Fatalf("Now() = %v, want 15ms", l.Now())
	}
	if _, ok := l.peek(); ok {
		t.Fatal("event within horizon not consumed")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	l := NewLoop()
	var times []Time
	l.Schedule(time.Millisecond, func() {
		times = append(times, l.Now())
		l.Schedule(time.Millisecond, func() { times = append(times, l.Now()) })
	})
	l.RunUntil(Time(3 * time.Millisecond))
	if len(times) != 2 {
		t.Fatalf("got %d events, want 2 (chained event within horizon)", len(times))
	}
	if times[1] != Time(2*time.Millisecond) {
		t.Fatalf("chained event at %v, want 2ms", times[1])
	}
}

func TestRunUntilIdleGuard(t *testing.T) {
	l := NewLoop()
	var rearm func()
	rearm = func() { l.Schedule(time.Nanosecond, rearm) }
	l.Schedule(0, rearm)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntilIdle did not panic on runaway loop")
		}
	}()
	l.RunUntilIdle(1000)
}

func TestProcessedCounter(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 7; i++ {
		l.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	tm := l.Schedule(time.Second, func() {})
	tm.Stop()
	l.RunUntilIdle(0)
	if l.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7 (cancelled events don't count)", l.Processed())
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(time.Second)
	if got := base.Add(time.Millisecond); got != Time(time.Second+time.Millisecond) {
		t.Fatalf("Add: got %v", got)
	}
	if got := base.Sub(Time(time.Millisecond)); got != time.Second-time.Millisecond {
		t.Fatalf("Sub: got %v", got)
	}
	if base.String() != "1s" {
		t.Fatalf("String() = %q, want 1s", base.String())
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(1, 2)
	b := NewRand(1, 2)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded Rands diverged")
		}
	}
}

func TestRandForkIndependence(t *testing.T) {
	parent := NewRand(1, 2)
	c1 := parent.Fork(1)
	// Same construction again must yield the same child stream.
	parent2 := NewRand(1, 2)
	c1b := parent2.Fork(1)
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("forked stream not deterministic")
		}
	}
}

func TestRandBoolEdges(t *testing.T) {
	r := NewRand(3, 4)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	// p=0.5 should be roughly balanced over many draws.
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.5) {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("Bool(0.5): %d/10000 true, outside [4500,5500]", n)
	}
}

func BenchmarkLoopScheduleStep(b *testing.B) {
	l := NewLoop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Schedule(time.Microsecond, func() {})
		l.Step()
	}
}

// Property: however events are scheduled (random times, nested scheduling,
// cancellations), execution is globally ordered by timestamp with FIFO
// ties and the clock never regresses.
func TestQuickEventOrderingProperty(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		l := NewLoop()
		rng := NewRand(seed, 0xeee)
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		seq := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			d := time.Duration(rng.IntN(1000)) * time.Microsecond
			mySeq := seq
			seq++
			tm := l.Schedule(d, func() {
				log = append(log, fired{at: l.Now(), seq: mySeq})
				if depth < 2 && rng.Bool(0.3) {
					schedule(depth + 1)
				}
			})
			if rng.Bool(0.1) {
				tm.Stop()
			}
		}
		for i := 0; i < 50; i++ {
			schedule(0)
		}
		l.RunUntilIdle(0)
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				t.Fatalf("seed %d: clock regressed: %v after %v", seed, log[i].at, log[i-1].at)
			}
		}
	}
}
