package sim

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestRescheduleMatchesStopPlusSchedule is the ordering-identity contract:
// a randomized mix of schedules, cancels and retargets must execute in
// exactly the same order whether retargeting uses Reschedule or the classic
// Stop-then-At pair. The two loops are driven side by side with identical
// decisions and their execution logs compared.
func TestRescheduleMatchesStopPlusSchedule(t *testing.T) {
	type action struct {
		kind   int // 0 = schedule, 1 = stop, 2 = retarget
		at     Time
		victim int
	}
	rng := rand.New(rand.NewPCG(9, 9))
	var actions []action
	for i := 0; i < 3000; i++ {
		a := action{
			kind: rng.IntN(3),
			at:   Time(rng.Int64N(100)) * Time(time.Millisecond),
		}
		a.victim = rng.IntN(i + 1)
		actions = append(actions, a)
	}

	run := func(useReschedule bool) []int {
		l := NewLoop()
		var got []int
		var timers []Timer
		fns := make([]func(), len(actions))
		for i, a := range actions {
			i := i
			fns[i] = func() { got = append(got, i) }
			switch a.kind {
			case 0:
				timers = append(timers, l.At(a.at, fns[i]))
			case 1:
				timers = append(timers, Timer{})
				if a.victim < len(timers) {
					timers[a.victim].Stop()
				}
			default:
				timers = append(timers, Timer{})
				if useReschedule {
					timers[a.victim] = l.Reschedule(timers[a.victim], a.at, fns[i])
				} else {
					timers[a.victim].Stop()
					timers[a.victim] = l.At(a.at, fns[i])
				}
			}
		}
		l.RunUntilIdle(0)
		return got
	}

	want := run(false)
	got := run(true)
	if len(got) != len(want) {
		t.Fatalf("Reschedule run executed %d events, Stop+At run %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution diverges at position %d: Reschedule ran %d, Stop+At ran %d", i, got[i], want[i])
		}
	}
}

// TestRescheduleRevivesStoppedTimer checks the revive-in-place path: a
// stopped timer whose heap entry has not drained is retargeted without
// growing the heap, and the old handle stays inert.
func TestRescheduleRevivesStoppedTimer(t *testing.T) {
	l := NewLoop()
	fired := 0
	old := l.Schedule(time.Second, func() { t.Fatal("stopped event fired") })
	old.Stop()
	if l.Len() != 0 {
		t.Fatalf("Len after stop = %d, want 0 (dead entries are not pending work)", l.Len())
	}
	tm := l.Reschedule(old, l.Now().Add(time.Millisecond), func() { fired++ })
	if len(l.events) != 1 {
		t.Fatalf("revival grew the heap to %d entries, want 1", len(l.events))
	}
	if old.Stop() || old.Pending() {
		t.Fatal("pre-reschedule handle can still reach the revived event")
	}
	if !tm.Pending() {
		t.Fatal("revived timer not pending")
	}
	l.RunUntilIdle(0)
	if fired != 1 {
		t.Fatalf("revived event fired %d times, want 1", fired)
	}
}

// TestLenCountsLiveEvents is the regression test for Loop.Len reporting
// live events only: stopped-but-undrained timers used to be counted, which
// skewed idle detection and pending-event assertions.
func TestLenCountsLiveEvents(t *testing.T) {
	l := NewLoop()
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, l.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	for i := 0; i < 4; i++ {
		timers[i].Stop()
	}
	if l.Len() != 6 {
		t.Fatalf("Len after 4 stops = %d, want 6 (dead heap entries must not count)", l.Len())
	}
	// Run past the first two (stopped) entries: draining dead entries must
	// not change the live count, and no live event fires before 5ms.
	l.RunFor(2500 * time.Microsecond)
	if l.Len() != 6 {
		t.Fatalf("Len after draining dead head = %d, want 6", l.Len())
	}
	l.RunUntilIdle(0)
	if l.Len() != 0 {
		t.Fatalf("Len after idle = %d, want 0", l.Len())
	}
}

// TestDeadEventCompaction forces the cancel-heavy regime: with far more
// stopped than live events the heap must compact (shrinking the backing
// entries) and still execute the survivors in exact schedule order.
func TestDeadEventCompaction(t *testing.T) {
	l := NewLoop()
	var got []int
	var timers []Timer
	const n = 1000
	for i := 0; i < n; i++ {
		i := i
		timers = append(timers, l.At(Time(i)*Time(time.Millisecond), func() { got = append(got, i) }))
	}
	// Stop every index not divisible by 10, scattered across the heap.
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			timers[i].Stop()
		}
	}
	if l.Len() != n/10 {
		t.Fatalf("Len = %d, want %d", l.Len(), n/10)
	}
	if len(l.events) >= n {
		t.Fatalf("compaction never ran: %d heap entries for %d live events", len(l.events), l.Len())
	}
	l.RunUntilIdle(0)
	if len(got) != n/10 {
		t.Fatalf("ran %d events, want %d", len(got), n/10)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("post-compaction execution out of order: %v", got[:i+1])
		}
	}
	// Survivors' timers were compacted to new heap positions; their handles
	// must have been invalidated (gen bumped) only for the dead, not the
	// live ones.
	for i := 0; i < n; i += 10 {
		if timers[i].Pending() {
			t.Fatalf("timer %d still pending after idle", i)
		}
	}
}

// TestRescheduleSteadyStateAllocs pins the retarget fast path at zero
// allocations once capacity is warm — the pop-then-push pattern every
// cumulative ACK pays must not touch the heap allocator.
func TestRescheduleSteadyStateAllocs(t *testing.T) {
	l := NewLoop()
	noop := func(any) {}
	var tm Timer
	cycle := func() {
		for i := 0; i < 32; i++ {
			tm = l.RescheduleArg(tm, l.Now().Add(time.Duration(i%5)*time.Microsecond), noop, nil)
		}
		l.RunUntilIdle(0)
	}
	cycle()
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state reschedule allocates %.1f objects per cycle, want 0", allocs)
	}
}
