package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestHeapPopOrderMatchesSort drives the inline 4-ary heap with a large
// random schedule, including same-instant ties, and checks the execution
// order is exactly (timestamp, scheduling order) — the contract the old
// container/heap implementation provided.
func TestHeapPopOrderMatchesSort(t *testing.T) {
	l := NewLoop()
	rng := rand.New(rand.NewPCG(1, 2))
	type key struct {
		at  Time
		seq int
	}
	var want []key
	var got []key
	for i := 0; i < 5000; i++ {
		at := Time(rng.Int64N(200)) * Time(time.Millisecond) // dense: many ties
		k := key{at: at, seq: i}
		want = append(want, k)
		l.At(at, func() { got = append(got, k) })
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	l.RunUntilIdle(0)
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d executed as %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestHeapInterleavedCancel mixes scheduling, cancellation and execution:
// cancelled events must be skipped, everything else must run in order.
func TestHeapInterleavedCancel(t *testing.T) {
	l := NewLoop()
	rng := rand.New(rand.NewPCG(3, 4))
	ran := map[int]bool{}
	timers := map[int]Timer{}
	cancelled := map[int]bool{}
	for i := 0; i < 2000; i++ {
		i := i
		timers[i] = l.Schedule(time.Duration(rng.Int64N(50))*time.Millisecond, func() { ran[i] = true })
		if rng.IntN(3) == 0 {
			victim := rng.IntN(i + 1)
			if timers[victim].Stop() {
				cancelled[victim] = true
			}
		}
	}
	l.RunUntilIdle(0)
	for i := 0; i < 2000; i++ {
		if cancelled[i] && ran[i] {
			t.Fatalf("event %d ran after Stop reported cancellation", i)
		}
		if !cancelled[i] && !ran[i] {
			t.Fatalf("event %d never ran and was never cancelled", i)
		}
	}
}

// TestAtArg checks the allocation-free scheduling form: the argument is
// delivered to the shared callback, ordering is unchanged, and Timers work.
func TestAtArg(t *testing.T) {
	l := NewLoop()
	var got []int
	deliver := func(arg any) { got = append(got, *arg.(*int)) }
	vals := []int{10, 20, 30}
	l.AtArg(Time(2*time.Millisecond), deliver, &vals[1])
	l.ScheduleArg(time.Millisecond, deliver, &vals[0])
	tm := l.AtArg(Time(3*time.Millisecond), deliver, &vals[2])
	stopped := l.AtArg(Time(4*time.Millisecond), deliver, &vals[2])
	if !stopped.Stop() {
		t.Fatal("Stop on pending AtArg timer returned false")
	}
	if tm.Pending() != true {
		t.Fatal("AtArg timer not pending")
	}
	l.RunUntilIdle(0)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("AtArg delivery = %v, want [10 20 30]", got)
	}
}

// TestScheduleSteadyStateAllocs is the zero-allocation contract of the
// event fast path: once the heap and slot table have grown, a
// schedule/cancel/run cycle allocates nothing.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	l := NewLoop()
	noop := func(any) {}
	cycle := func() {
		for i := 0; i < 64; i++ {
			l.AtArg(l.Now().Add(time.Duration(i%7)*time.Microsecond), noop, nil)
		}
		tm := l.ScheduleArg(time.Second, noop, nil)
		tm.Stop()
		l.RunUntilIdle(0)
	}
	cycle() // warm capacity
	if allocs := testing.AllocsPerRun(100, cycle); allocs > 0 {
		t.Fatalf("steady-state scheduling allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestLoopReset checks that Reset restores a loop to fresh-start state and
// invalidates every outstanding timer handle.
func TestLoopReset(t *testing.T) {
	l := NewLoop()
	fired := false
	stale := l.Schedule(time.Millisecond, func() { fired = true })
	l.RunFor(10 * time.Millisecond)
	leftover := l.Schedule(time.Hour, func() { t.Fatal("leftover event survived Reset") })

	l.Reset()
	if l.Now() != 0 || l.Len() != 0 || l.Processed() != 0 {
		t.Fatalf("Reset left state: now=%v len=%d processed=%d", l.Now(), l.Len(), l.Processed())
	}
	if stale.Pending() || leftover.Pending() {
		t.Fatal("pre-Reset timers still pending")
	}
	if stale.Stop() || leftover.Stop() {
		t.Fatal("pre-Reset timers stoppable after Reset")
	}

	// The reset loop must schedule and run exactly like a fresh one, and
	// stale handles must not be able to cancel new events that reuse their
	// slots.
	count := 0
	for i := 0; i < 100; i++ {
		l.Schedule(time.Duration(i)*time.Microsecond, func() { count++ })
	}
	leftover.Stop()
	stale.Stop()
	l.RunUntilIdle(0)
	if count != 100 {
		t.Fatalf("post-Reset loop ran %d events, want 100 (stale Stop cancelled one?)", count)
	}
	if !fired {
		t.Fatal("pre-Reset event never fired before Reset")
	}
}

// TestRandReseed checks Reseed rewinds a stream to its NewRand state.
func TestRandReseed(t *testing.T) {
	a := NewRand(77, 88)
	var first [8]uint64
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(77, 88)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed = %d, want %d", i, got, first[i])
		}
	}
}
