package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func TestValidationWorkersInvariant(t *testing.T) {
	cfg := QuickValidation()
	cfg.Workers = 1
	serial := RunValidation(cfg)
	cfg.Workers = 4
	parallel := RunValidation(cfg)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("validation report depends on worker count")
	}
}

func TestCongestionExperiment(t *testing.T) {
	rep, err := RunCongestion(CongestionConfig{
		Topologies: []string{"p2p", "parallel-x2"},
		Replicas:   5,
		Samples:    12,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 6 { // 2 topologies x 3 tests
		t.Fatalf("cells = %d, want 6", len(rep.Cells))
	}
	// The point-to-point control has no routers, no cross traffic and a
	// clean path: reordering incidence must be zero.
	for _, test := range congestionTests {
		c, ok := rep.Cell("p2p", test)
		if !ok {
			t.Fatalf("missing p2p/%s cell", test)
		}
		if c.Reordering != 0 {
			t.Errorf("p2p/%s: clean point-to-point path reported %.2f reordering", test, c.Reordering)
		}
	}
	// The shared parallel bundle must show congestion-induced reordering in
	// at least one technique's cells.
	saw := false
	for _, test := range congestionTests {
		if c, ok := rep.Cell("parallel-x2", test); ok && c.Targets > 0 && c.Reordering > 0 {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no technique observed congestion-induced reordering on parallel-x2")
	}
	if len(rep.Agreement["parallel-x2"]) == 0 {
		t.Fatal("no agreement pairs for parallel-x2")
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	for _, want := range []string{"congestion-induced", "parallel-x2", "agreement"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report text missing %q", want)
		}
	}
}

func TestCongestionDeterministic(t *testing.T) {
	run := func(workers int) *CongestionReport {
		rep, err := RunCongestion(CongestionConfig{
			Topologies: []string{"bottleneck"},
			Replicas:   3,
			Samples:    8,
			Workers:    workers,
			Seed:       11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("congestion report depends on worker count")
	}
}
