package experiments

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
)

// MechanismsConfig parameterizes E8, an extension experiment: the paper's
// conclusion enumerates reordering causes beyond striped trunks —
// multi-path routing and layer-2 retransmission — and argues that the
// time-domain distribution is the representation that distinguishes them.
// This experiment measures each mechanism's gap signature with the same
// dual connection test sweep as Fig 7:
//
//   - striped trunk: exponential decay with the backlog drain constant;
//   - multi-path spray: a step — constant probability up to the member
//     delay spread, zero beyond;
//   - out-of-order L2 ARQ: a near-flat tail out to the retransmit delay,
//     orders of magnitude longer than queueing effects.
type MechanismsConfig struct {
	// Gaps is the spacing schedule (defaults to a log-ish sweep from 0 to
	// 4 ms that spans all three signatures).
	Gaps []time.Duration
	// SamplesPerPoint is the pair count per spacing.
	SamplesPerPoint int
	// Seed drives everything.
	Seed uint64
}

// DefaultMechanisms returns the full-scale configuration.
func DefaultMechanisms() MechanismsConfig {
	return MechanismsConfig{
		Gaps: []time.Duration{
			0, 10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
			100 * time.Microsecond, 150 * time.Microsecond, 250 * time.Microsecond,
			500 * time.Microsecond, 1 * time.Millisecond, 2 * time.Millisecond,
			4 * time.Millisecond,
		},
		SamplesPerPoint: 500,
		Seed:            88,
	}
}

// QuickMechanisms is the benchmark-scale version.
func QuickMechanisms() MechanismsConfig {
	cfg := DefaultMechanisms()
	cfg.SamplesPerPoint = 150
	return cfg
}

// MechanismCurve is one mechanism's gap signature.
type MechanismCurve struct {
	Name   string
	Points []GapPoint
}

// RateAt returns the rate at the nearest measured gap.
func (c *MechanismCurve) RateAt(gap time.Duration) float64 {
	r := GapSweepReport{Points: c.Points}
	return r.RateAt(gap)
}

// MechanismsReport holds all curves.
type MechanismsReport struct {
	Curves []MechanismCurve
}

// Curve returns the named mechanism's curve.
func (rep *MechanismsReport) Curve(name string) (*MechanismCurve, bool) {
	for i := range rep.Curves {
		if rep.Curves[i].Name == name {
			return &rep.Curves[i], true
		}
	}
	return nil, false
}

// WriteText prints the curves side by side.
func (rep *MechanismsReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E8 (extension) time-domain signatures of reordering mechanisms")
	fmt.Fprintf(w, "%10s", "gap")
	for _, c := range rep.Curves {
		fmt.Fprintf(w, " %10s", c.Name)
	}
	fmt.Fprintln(w)
	if len(rep.Curves) == 0 {
		return
	}
	for i := range rep.Curves[0].Points {
		fmt.Fprintf(w, "%10s", rep.Curves[0].Points[i].Gap)
		for _, c := range rep.Curves {
			fmt.Fprintf(w, " %10.4f", c.Points[i].Rate)
		}
		fmt.Fprintln(w)
	}
}

// RunMechanisms executes E8.
func RunMechanisms(cfg MechanismsConfig) (*MechanismsReport, error) {
	if len(cfg.Gaps) == 0 {
		cfg = DefaultMechanisms()
	}
	mechanisms := []struct {
		name string
		path func() simnet.PathSpec
	}{
		{"trunk", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				Trunk:    &netem.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.15, MeanBurstBytes: 2500},
			}
		}},
		{"multipath", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				MultiPath: &netem.MultiPathConfig{
					Delays: []time.Duration{time.Millisecond + 150*time.Microsecond, time.Millisecond},
				},
			}
		}},
		{"l2-arq", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				ARQ:      &netem.ARQConfig{FrameErrorRate: 0.10, RetransmitDelay: 2 * time.Millisecond},
			}
		}},
	}
	rep := &MechanismsReport{}
	for _, m := range mechanisms {
		curve := MechanismCurve{Name: m.name}
		for i, gap := range cfg.Gaps {
			n := simnet.New(simnet.Config{
				Seed:    cfg.Seed + uint64(i)*101,
				Server:  host.FreeBSD4(),
				Forward: m.path(),
			})
			prober := core.NewProber(n.Probe(), n.ServerAddr(), cfg.Seed+uint64(i))
			res, err := prober.DualConnectionTest(core.DCTOptions{Samples: cfg.SamplesPerPoint, Gap: gap})
			if err != nil {
				return nil, fmt.Errorf("mechanism %s gap %v: %w", m.name, gap, err)
			}
			f := res.Forward()
			curve.Points = append(curve.Points, GapPoint{Gap: gap, Rate: f.Rate(), Valid: f.Valid()})
		}
		rep.Curves = append(rep.Curves, curve)
	}
	return rep, nil
}
