package experiments

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
)

// MechanismsConfig parameterizes E8, an extension experiment: the paper's
// conclusion enumerates reordering causes beyond striped trunks —
// multi-path routing and layer-2 retransmission — and argues that the
// time-domain distribution is the representation that distinguishes them.
// This experiment measures each mechanism's gap signature with the same
// dual connection test sweep as Fig 7:
//
//   - striped trunk: exponential decay with the backlog drain constant;
//   - multi-path spray: a step — constant probability up to the member
//     delay spread, zero beyond;
//   - out-of-order L2 ARQ: a near-flat tail out to the retransmit delay,
//     orders of magnitude longer than queueing effects.
type MechanismsConfig struct {
	// Gaps is the spacing schedule (defaults to a log-ish sweep from 0 to
	// 4 ms that spans all three signatures).
	Gaps []time.Duration
	// SamplesPerPoint is the pair count per spacing.
	SamplesPerPoint int
	// Seed drives everything.
	Seed uint64
	// Workers caps the parallel cell runs (default 16). Each mechanism×gap
	// cell is hermetic — its simnet and prober derive from the cell's seed
	// alone — so the report is identical at any worker count.
	Workers int
}

// DefaultMechanisms returns the full-scale configuration.
func DefaultMechanisms() MechanismsConfig {
	return MechanismsConfig{
		Gaps: []time.Duration{
			0, 10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
			100 * time.Microsecond, 150 * time.Microsecond, 250 * time.Microsecond,
			500 * time.Microsecond, 1 * time.Millisecond, 2 * time.Millisecond,
			4 * time.Millisecond,
		},
		SamplesPerPoint: 500,
		Seed:            88,
	}
}

// QuickMechanisms is the benchmark-scale version.
func QuickMechanisms() MechanismsConfig {
	cfg := DefaultMechanisms()
	cfg.SamplesPerPoint = 150
	return cfg
}

// MechanismCurve is one mechanism's gap signature.
type MechanismCurve struct {
	Name   string
	Points []GapPoint
}

// RateAt returns the rate at the nearest measured gap.
func (c *MechanismCurve) RateAt(gap time.Duration) float64 {
	r := GapSweepReport{Points: c.Points}
	return r.RateAt(gap)
}

// MechanismsReport holds all curves.
type MechanismsReport struct {
	Curves []MechanismCurve
}

// Curve returns the named mechanism's curve.
func (rep *MechanismsReport) Curve(name string) (*MechanismCurve, bool) {
	for i := range rep.Curves {
		if rep.Curves[i].Name == name {
			return &rep.Curves[i], true
		}
	}
	return nil, false
}

// WriteText prints the curves side by side.
func (rep *MechanismsReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E8 (extension) time-domain signatures of reordering mechanisms")
	fmt.Fprintf(w, "%10s", "gap")
	for _, c := range rep.Curves {
		fmt.Fprintf(w, " %10s", c.Name)
	}
	fmt.Fprintln(w)
	if len(rep.Curves) == 0 {
		return
	}
	for i := range rep.Curves[0].Points {
		fmt.Fprintf(w, "%10s", rep.Curves[0].Points[i].Gap)
		for _, c := range rep.Curves {
			fmt.Fprintf(w, " %10.4f", c.Points[i].Rate)
		}
		fmt.Fprintln(w)
	}
}

// RunMechanisms executes E8. Cells run on the campaign span scheduler:
// every mechanism×gap cell is hermetic, so the sweep parallelizes freely
// and the report bytes are identical at any worker count.
func RunMechanisms(cfg MechanismsConfig) (*MechanismsReport, error) {
	if len(cfg.Gaps) == 0 {
		workers := cfg.Workers
		cfg = DefaultMechanisms()
		cfg.Workers = workers
	}
	mechanisms := []struct {
		name string
		path func() simnet.PathSpec
	}{
		{"trunk", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				Trunk:    &netem.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.15, MeanBurstBytes: 2500},
			}
		}},
		{"multipath", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				MultiPath: &netem.MultiPathConfig{
					Delays: []time.Duration{time.Millisecond + 150*time.Microsecond, time.Millisecond},
				},
			}
		}},
		{"l2-arq", func() simnet.PathSpec {
			return simnet.PathSpec{
				LinkRate: 1_000_000_000,
				ARQ:      &netem.ARQConfig{FrameErrorRate: 0.10, RetransmitDelay: 2 * time.Millisecond},
			}
		}},
	}
	// Flatten the mechanism × gap grid so the scheduler can span-dispatch
	// it; each cell writes only its own slot, and the in-order emit pass
	// surfaces the lowest-index failure deterministically.
	type cell struct{ mech, gi int }
	cells := make([]cell, 0, len(mechanisms)*len(cfg.Gaps))
	for mi := range mechanisms {
		for gi := range cfg.Gaps {
			cells = append(cells, cell{mi, gi})
		}
	}
	points := make([]GapPoint, len(cells))
	errs := make([]error, len(cells))
	sched := campaign.NewScheduler(campaign.SchedulerConfig{Workers: cfg.Workers})
	if err := sched.RunSpans(0, len(cells),
		nil,
		func(_, index, _ int) error {
			c := cells[index]
			m, gap := mechanisms[c.mech], cfg.Gaps[c.gi]
			n := simnet.New(simnet.Config{
				Seed:    cfg.Seed + uint64(c.gi)*101,
				Server:  host.FreeBSD4(),
				Forward: m.path(),
			})
			prober := core.NewProber(n.Probe(), n.ServerAddr(), cfg.Seed+uint64(c.gi))
			res, err := prober.DualConnectionTest(core.DCTOptions{Samples: cfg.SamplesPerPoint, Gap: gap})
			if err != nil {
				errs[index] = fmt.Errorf("mechanism %s gap %v: %w", m.name, gap, err)
				return nil
			}
			f := res.Forward()
			points[index] = GapPoint{Gap: gap, Rate: f.Rate(), Valid: f.Valid()}
			return nil
		},
		func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if errs[i] != nil {
					return errs[i]
				}
			}
			return nil
		},
	); err != nil {
		return nil, err
	}
	rep := &MechanismsReport{}
	for mi, m := range mechanisms {
		rep.Curves = append(rep.Curves, MechanismCurve{
			Name:   m.name,
			Points: points[mi*len(cfg.Gaps) : (mi+1)*len(cfg.Gaps)],
		})
	}
	return rep, nil
}
