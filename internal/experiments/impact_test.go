package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestImpactShape(t *testing.T) {
	rep, err := RunImpact(ImpactConfig{
		Jitters: []time.Duration{0, 2 * time.Millisecond},
		Bytes:   128 << 10,
		Seed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	clean, dirty := rep.Rows[0], rep.Rows[1]

	// The clean path: no reordering measured, no retransmissions, both
	// senders equivalent.
	if clean.MeasuredRate != 0 || clean.Reno.FastRetransmits != 0 {
		t.Fatalf("clean row: %+v", clean)
	}
	// The reordering path: measured by the tools AND damaging to Reno.
	if dirty.MeasuredRate == 0 {
		t.Error("tools measured no reordering on the jittered path")
	}
	if dirty.PredictedDeepFrac == 0 {
		t.Error("burst test predicted no deep reordering")
	}
	if dirty.Reno.FastRetransmits == 0 || dirty.Reno.SpuriousFast == 0 {
		t.Errorf("Reno not damaged: %+v", dirty.Reno)
	}
	// The paper's motivation: throughput drops under reordering.
	if dirty.Reno.Throughput() >= clean.Reno.Throughput() {
		t.Errorf("no throughput damage: clean %.0f vs dirty %.0f",
			clean.Reno.Throughput(), dirty.Reno.Throughput())
	}
	// The cited proposals' fix: adaptation outperforms fixed dupthresh on
	// the reordering path.
	if dirty.Adaptive.Throughput() <= dirty.Reno.Throughput() {
		t.Errorf("adaptation did not help: reno %.0f vs adaptive %.0f",
			dirty.Reno.Throughput(), dirty.Adaptive.Throughput())
	}
	if dirty.Adaptive.FinalDupThresh <= 3 {
		t.Errorf("threshold never adapted: %+v", dirty.Adaptive)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "E9") {
		t.Error("report text missing header")
	}
}
