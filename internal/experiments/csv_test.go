package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
	"time"
)

// parseCSV reads back what a writer emitted, verifying well-formedness.
func parseCSV(t *testing.T, b []byte) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader(b)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV unparseable: %v", err)
	}
	return rows
}

func TestGapSweepCSV(t *testing.T) {
	rep := &GapSweepReport{Points: []GapPoint{
		{Gap: 0, Rate: 0.14, Valid: 100},
		{Gap: 50 * time.Microsecond, Rate: 0.01, Valid: 100},
	}}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 3 || rows[0][0] != "gap_us" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][0] != "50" {
		t.Fatalf("gap_us = %q, want 50", rows[2][0])
	}
	if v, err := strconv.ParseFloat(rows[1][1], 64); err != nil || v != 0.14 {
		t.Fatalf("rate = %q", rows[1][1])
	}
}

func TestTimeSeriesCSV(t *testing.T) {
	rep := &TimeSeriesReport{Points: []TimeSeriesPoint{
		{At: 2 * time.Second, TrueRate: 0.1, SCT: 0.09, SYN: 0.11},
	}}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 2 || rows[1][0] != "2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMechanismsCSVLongForm(t *testing.T) {
	rep := &MechanismsReport{Curves: []MechanismCurve{
		{Name: "trunk", Points: []GapPoint{{Gap: 0, Rate: 0.1}}},
		{Name: "l2-arq", Points: []GapPoint{{Gap: 0, Rate: 0.09}}},
	}}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) != 3 || rows[1][0] != "trunk" || rows[2][0] != "l2-arq" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSurveyAndValidationCSV(t *testing.T) {
	survey := RunSurvey(QuickSurvey())
	var buf bytes.Buffer
	if err := survey.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows) < 2 || rows[0][1] != "cdf" {
		t.Fatalf("survey CSV header: %v", rows[0])
	}
	// CDF values must be nondecreasing and end at 1.
	prev := 0.0
	for _, r := range rows[1:] {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil || v < prev {
			t.Fatalf("CDF column broken at %v", r)
		}
		prev = v
	}
	if prev != 1 {
		t.Fatalf("CDF ends at %v", prev)
	}

	val := RunValidation(QuickValidation())
	buf.Reset()
	if err := val.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, buf.Bytes())
	if len(rows) != len(val.Runs)+1 {
		t.Fatalf("validation CSV rows = %d, want %d", len(rows), len(val.Runs)+1)
	}
}
