package experiments

import (
	"bytes"
	"testing"
)

// TestGapSweepWorkerCountInvariant pins the port of RunGapSweep onto the
// campaign span scheduler: every point's simnet and prober derive from the
// point index alone, so the rendered report must be byte-identical at any
// worker count.
func TestGapSweepWorkerCountInvariant(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 16} {
		cfg := QuickGapSweep()
		cfg.Workers = workers
		rep, err := RunGapSweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		rep.WriteText(&buf)
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("workers=%d: gap sweep report differs from workers=1", workers)
		}
	}
}

// TestMechanismsWorkerCountInvariant is the same pin for the E8 mechanism
// comparison: mechanism×gap cells are hermetic, so parallelizing the grid
// must not change a byte of the report.
func TestMechanismsWorkerCountInvariant(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 7} {
		cfg := QuickMechanisms()
		cfg.Workers = workers
		rep, err := RunMechanisms(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		rep.WriteText(&buf)
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Errorf("workers=%d: mechanisms report differs from workers=1", workers)
		}
	}
}
