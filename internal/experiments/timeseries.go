package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/sim"
	"reorder/internal/simnet"
)

// TimeSeriesConfig parameterizes E3 (Fig 6): interleaved single-connection
// and SYN test measurements of one load-balanced path whose reordering rate
// drifts over time — the www.apple.com experiment, where the dual
// connection test was ruled out by the load balancer.
type TimeSeriesConfig struct {
	// Rounds is the number of interleaved measurement rounds.
	Rounds int
	// Samples per measurement (paper: 15).
	Samples int
	// Period is the drift period of the underlying reordering process.
	Period time.Duration
	// PeakRate is the maximum instantaneous swap probability.
	PeakRate float64
	// Seed drives everything.
	Seed uint64
}

// DefaultTimeSeries mirrors Fig 6's shape. Forty samples per measurement
// give per-round rate estimates enough resolution (2.5%) to track a peak
// drift of 15%.
func DefaultTimeSeries() TimeSeriesConfig {
	return TimeSeriesConfig{Rounds: 60, Samples: 40, Period: 10 * time.Minute, PeakRate: 0.15, Seed: 66}
}

// QuickTimeSeries is the benchmark-scale version. The sample count stays
// large enough that per-round rate estimates can track the drift at all.
func QuickTimeSeries() TimeSeriesConfig {
	return TimeSeriesConfig{Rounds: 12, Samples: 25, Period: 2 * time.Minute, PeakRate: 0.20, Seed: 66}
}

// TimeSeriesPoint is one interleaved measurement round.
type TimeSeriesPoint struct {
	At       time.Duration // virtual time of the round
	TrueRate float64       // instantaneous configured swap probability
	SCT, SYN float64       // measured forward rates
	SCTValid int
	SYNValid int
}

// TimeSeriesReport is the Fig 6 series.
type TimeSeriesReport struct {
	Points      []TimeSeriesPoint
	DCTExcluded bool // the load balancer must rule the DCT out
}

// Correlation returns the Pearson correlation between the two tests'
// series — the quantitative version of Fig 6's "the tests track each
// other".
func (rep *TimeSeriesReport) Correlation() float64 {
	var xs, ys []float64
	for _, p := range rep.Points {
		xs = append(xs, p.SCT)
		ys = append(ys, p.SYN)
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// WriteText prints the series.
func (rep *TimeSeriesReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "E3 (Fig 6) forward reordering vs time on a load-balanced path (DCT excluded: %v)\n",
		rep.DCTExcluded)
	fmt.Fprintf(w, "%10s %9s %9s %9s\n", "t", "true", "sct", "syn")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%10s %9.4f %9.4f %9.4f\n", p.At.Round(time.Second), p.TrueRate, p.SCT, p.SYN)
	}
	fmt.Fprintf(w, "SCT/SYN correlation: %.3f\n", rep.Correlation())
}

// RunTimeSeries executes E3.
func RunTimeSeries(cfg TimeSeriesConfig) (*TimeSeriesReport, error) {
	rate := func(t sim.Time) float64 {
		phase := 2 * math.Pi * float64(t) / float64(cfg.Period)
		return cfg.PeakRate * 0.5 * (1 - math.Cos(phase))
	}
	n := simnet.New(simnet.Config{
		Seed: cfg.Seed,
		Backends: []host.Profile{
			host.FreeBSD4(), host.FreeBSD4(), host.Linux22(), host.Windows2000(),
		},
		Forward: simnet.PathSpec{SwapProbFn: rate},
	})
	prober := core.NewProber(n.Probe(), n.ServerAddr(), cfg.Seed^0x7e5)
	rep := &TimeSeriesReport{}

	// Confirm the load balancer rules the dual connection test out, as on
	// the paper's path. (With a handful of backends the two validation
	// connections can, by luck, land together; the exclusion is expected,
	// not guaranteed.)
	_, err := prober.DualConnectionTest(core.DCTOptions{Samples: 2})
	rep.DCTExcluded = errors.Is(err, core.ErrIPIDUnusable)

	interval := cfg.Period / time.Duration(cfg.Rounds) * 2 // cover ~2 periods
	for round := 0; round < cfg.Rounds; round++ {
		pt := TimeSeriesPoint{
			At:       n.Loop.Now().Duration(),
			TrueRate: rate(n.Loop.Now()),
		}
		if res, err := prober.SingleConnectionTest(core.SCTOptions{Samples: cfg.Samples, Reversed: true}); err == nil {
			f := res.Forward()
			pt.SCT, pt.SCTValid = f.Rate(), f.Valid()
		}
		if res, err := prober.SYNTest(core.SYNOptions{Samples: cfg.Samples}); err == nil {
			f := res.Forward()
			pt.SYN, pt.SYNValid = f.Rate(), f.Valid()
		}
		rep.Points = append(rep.Points, pt)
		n.Probe().Sleep(interval)
	}
	return rep, nil
}
