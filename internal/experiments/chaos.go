package experiments

import (
	"fmt"
	"io"

	"reorder/internal/campaign"
	"reorder/internal/stats"
)

// ChaosConfig parameterizes the fault-schedule experiment: a campaign over
// the adversarial scenario catalog — time-varying impairment timelines,
// mid-flow route flaps, hostile middleboxes — measured by the paper's
// single-packet, dual-packet and SYN techniques and cross-checked for
// agreement. Where the congestion experiment asks whether clean routed
// paths reorder at all, this one asks which measurement techniques survive
// a path that actively misbehaves.
type ChaosConfig struct {
	// Scenarios are registry names (default: every named scenario). The ""
	// static control is always prepended so each technique has a fault-free
	// baseline cell.
	Scenarios []string
	// Replicas is how many seeds per scenario×test cell (default 8).
	Replicas int
	// Samples per probe (default 16).
	Samples int
	// Workers caps campaign parallelism (default: GOMAXPROCS).
	Workers int
	// Seed offsets the derived per-target seeds.
	Seed uint64
	// Confidence for the paired-difference agreement test (default 99.9%).
	Confidence float64
}

// chaosTests are the techniques compared. The SYN test rides along because
// its probes carry no data: middleboxes that only molest data segments
// (RST/FIN injection, sequence holes) leave it untouched, which is exactly
// the kind of technique divergence a fault schedule should expose.
var chaosTests = []string{"single", "dual", "syn"}

// ChaosCell aggregates one scenario×test combination.
type ChaosCell struct {
	Scenario string
	Topology string // the scenario's paired topology ("" = point-to-point)
	Test     string
	Targets  int // probes that produced a measurement
	Excluded int // probes excluded (errors, IPID prevalidation)
	Errored  int // of Excluded, probes that ended in a hard error
	// Reordering is the fraction of measurements with at least one
	// reordered sample.
	Reordering float64
	// MeanFwdRate and MeanRevRate average the per-probe reordering rates.
	MeanFwdRate, MeanRevRate float64
}

// ChaosReport is the experiment's output: per-cell incidence plus, per
// scenario, the technique-agreement pairs.
type ChaosReport struct {
	Cells      []ChaosCell
	Agreement  map[string][]AgreementPair
	Confidence float64
}

// Cell returns the (scenario, test) cell, if present.
func (rep *ChaosReport) Cell(scenario, test string) (ChaosCell, bool) {
	for _, c := range rep.Cells {
		if c.Scenario == scenario && c.Test == test {
			return c, true
		}
	}
	return ChaosCell{}, false
}

// Disagreements returns the scenarios with at least one agreement pair
// whose null hypothesis (same mean rate from both techniques) is rejected
// — the schedules that measurably split the techniques apart.
func (rep *ChaosReport) Disagreements() []string {
	var out []string
	for _, c := range rep.Cells {
		if c.Test != chaosTests[0] {
			continue
		}
		for _, p := range rep.Agreement[c.Scenario] {
			if p.Hosts > 0 && p.NullOK == 0 {
				out = append(out, c.Scenario)
				break
			}
		}
	}
	return out
}

// WriteText prints the per-cell table and the per-scenario agreement pairs.
func (rep *ChaosReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "technique robustness under time-varying and adversarial fault schedules\n")
	fmt.Fprintf(w, "%-15s %-10s %-7s %7s %8s %7s %10s %9s %9s\n",
		"scenario", "topology", "test", "targets", "excluded", "errors", "reordering", "fwd-rate", "rev-rate")
	for _, c := range rep.Cells {
		name, topo := c.Scenario, c.Topology
		if name == "" {
			name = "(static)"
		}
		if topo == "" {
			topo = "p2p"
		}
		fmt.Fprintf(w, "%-15s %-10s %-7s %7d %8d %7d %9.0f%% %9.4f %9.4f\n",
			name, topo, c.Test, c.Targets, c.Excluded, c.Errored,
			c.Reordering*100, c.MeanFwdRate, c.MeanRevRate)
	}
	fmt.Fprintf(w, "\ntechnique agreement per scenario (paired-difference @ %.1f%% confidence)\n", rep.Confidence*100)
	fmt.Fprintf(w, "%-15s %-8s %-8s %-8s %6s %7s\n", "scenario", "test-a", "test-b", "dir", "series", "null-ok")
	for _, c := range rep.Cells {
		// Emit each scenario's pairs once, on its first cell.
		if c.Test != chaosTests[0] {
			continue
		}
		name := c.Scenario
		if name == "" {
			name = "(static)"
		}
		for _, p := range rep.Agreement[c.Scenario] {
			fmt.Fprintf(w, "%-15s %-8s %-8s %-8s %6d %7d\n",
				name, p.TestA, p.TestB, p.Direction, p.Hosts, p.NullOK)
		}
	}
	if d := rep.Disagreements(); len(d) > 0 {
		fmt.Fprintf(w, "\nschedules splitting the techniques apart (null rejected): %v\n", d)
	}
}

// RunChaos executes the fault-schedule experiment: enumerate scenario ×
// test × replica targets over the swap-heavy impairment (a solid baseline
// every technique measures the same), pair each scenario with the topology
// it was designed around, probe through the campaign machinery, and compare
// technique verdicts per schedule.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = campaign.ScenarioNames()
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 8
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 16
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.999
	}
	scenarios := append([]string{""}, cfg.Scenarios...)

	// Scenarios that need a routed topology (route flaps) enumerate with
	// it; the rest run point-to-point. Grouping by topology keeps each
	// Enumerate call a clean cross-product.
	var targets []campaign.Target
	for _, scn := range scenarios {
		scns := []string{scn}
		if scn == "" {
			scns = nil // Enumerate's default static entry
		}
		ts, err := campaign.Enumerate(campaign.EnumSpec{
			Profiles:    []string{"freebsd4"},
			Impairments: []string{"swap-heavy"},
			Tests:       chaosTests,
			Seeds:       cfg.Replicas,
			BaseSeed:    cfg.Seed,
			Topologies:  topologiesFor(scn),
			Scenarios:   scns,
		})
		if err != nil {
			return nil, err
		}
		for i := range ts {
			ts[i].Index = len(targets) + i
		}
		targets = append(targets, ts...)
	}

	results := make([]campaign.TargetResult, 0, len(targets))
	sink := campaign.FuncSink(func(r *campaign.TargetResult) error {
		results = append(results, *r)
		return nil
	})
	if _, err := campaign.Run(campaign.Config{
		Targets: targets, Samples: cfg.Samples, Workers: cfg.Workers,
		Sinks: []campaign.Sink{sink},
	}); err != nil {
		return nil, err
	}

	rep := &ChaosReport{Confidence: cfg.Confidence, Agreement: map[string][]AgreementPair{}}
	// Replica-paired rate series per scenario×test×direction: replica r of
	// every technique derives from the same scenario seed (the test is
	// excluded from seed derivation), so series index pairs are genuinely
	// paired measurements of the same fault schedule.
	type key struct{ scn, test string }
	fwd := map[key][]float64{}
	rev := map[key][]float64{}
	for _, scn := range scenarios {
		for _, test := range chaosTests {
			cell := ChaosCell{Scenario: scn, Topology: campaign.ScenarioTopology(scn), Test: test}
			k := key{scn, test}
			for i := range results {
				r := &results[i]
				if r.Scenario != scn || r.Test != test {
					continue
				}
				if r.Err != "" || r.DCTExcluded != "" {
					cell.Excluded++
					if r.Err != "" {
						cell.Errored++
					}
					// Keep series index-aligned across techniques: an excluded
					// replica pairs as a zero-rate measurement. Under schedules
					// that kill connections outright (RST injection) the hard
					// errors ARE the divergence, and zero-rate is exactly what
					// the broken technique reports.
					fwd[k] = append(fwd[k], 0)
					rev[k] = append(rev[k], 0)
					continue
				}
				cell.Targets++
				if r.AnyReordering {
					cell.Reordering++
				}
				cell.MeanFwdRate += r.FwdRate
				cell.MeanRevRate += r.RevRate
				fwd[k] = append(fwd[k], r.FwdRate)
				rev[k] = append(rev[k], r.RevRate)
			}
			if cell.Targets > 0 {
				cell.Reordering /= float64(cell.Targets)
				cell.MeanFwdRate /= float64(cell.Targets)
				cell.MeanRevRate /= float64(cell.Targets)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	for _, scn := range scenarios {
		var pairs []AgreementPair
		for i, a := range chaosTests {
			for _, b := range chaosTests[i+1:] {
				for _, dir := range []string{"forward", "reverse"} {
					series := fwd
					if dir == "reverse" {
						series = rev
					}
					sa, sb := series[key{scn, a}], series[key{scn, b}]
					n := min(len(sa), len(sb))
					if n < 3 {
						continue
					}
					pair := AgreementPair{TestA: a, TestB: b, Direction: dir, Hosts: 1}
					if stats.PairDifference(sa[:n], sb[:n], cfg.Confidence).NullSupported {
						pair.NullOK = 1
					}
					pairs = append(pairs, pair)
				}
			}
		}
		rep.Agreement[scn] = pairs
	}
	return rep, nil
}

// topologiesFor returns the enumeration topology list for one scenario:
// its designed-for pairing, or the classic point-to-point path.
func topologiesFor(scenario string) []string {
	if topo := campaign.ScenarioTopology(scenario); topo != "" {
		return []string{topo}
	}
	return nil
}
