package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/sim"
	"reorder/internal/simnet"
	"reorder/internal/stats"
)

// TestNames are the four techniques in the survey's round-robin order,
// shared with the campaign subsystem so both layers agree on the set.
var TestNames = campaign.Tests

// SurveyConfig parameterizes E2/E4/E6: the §IV-B live-host survey. The
// paper probed 50 hosts for 20 days, cycling the four tests round-robin,
// ~850 measurements per host per test, 15 samples per measurement.
type SurveyConfig struct {
	// Hosts is the population size (paper: 15 hand-picked + 35 random = 50).
	Hosts int
	// Rounds is the number of measurement rounds (each round runs every
	// test once against every host).
	Rounds int
	// Samples per measurement (paper: 15).
	Samples int
	// Seed drives host population synthesis and all measurement noise.
	Seed uint64
	// Workers sizes the campaign scheduler pool surveying hosts
	// concurrently (0 = the scheduler default). Each host's scenario is
	// hermetic, so concurrency never changes the report.
	Workers int
}

// DefaultSurvey mirrors the paper's shape at a tractable number of rounds.
func DefaultSurvey() SurveyConfig {
	return SurveyConfig{Hosts: 50, Rounds: 40, Samples: 15, Seed: 719}
}

// QuickSurvey is the benchmark-scale version.
func QuickSurvey() SurveyConfig {
	return SurveyConfig{Hosts: 12, Rounds: 6, Samples: 8, Seed: 719}
}

// HostRecord describes one surveyed host and its measurement outcomes.
type HostRecord struct {
	Name       string
	IPIDPolicy string
	Balanced   bool // behind a load balancer

	// TrueFwd and TrueRev are the hidden path swap probabilities —
	// unknowable to a real surveyor, recorded here for report context.
	TrueFwd, TrueRev float64

	// DCTExcluded is set when IPID prevalidation ruled the host out, with
	// the reason ("zero-ipid", "non-monotonic").
	DCTExcluded string

	// FwdSeries and RevSeries hold the per-round measured rates, keyed by
	// test name. Rounds where a test errored contribute no entry.
	FwdSeries, RevSeries map[string][]float64

	// Measurements and WithReordering implement the §IV-B statistic
	// "more than 15% of measurements had at least one reordered sample".
	Measurements, WithReordering int
}

// MeanFwd returns the mean forward rate over rounds for one test.
func (h *HostRecord) MeanFwd(test string) float64 { return stats.Summarize(h.FwdSeries[test]).Mean }

// MeanRev returns the mean reverse rate over rounds for one test.
func (h *HostRecord) MeanRev(test string) float64 { return stats.Summarize(h.RevSeries[test]).Mean }

// PathRate returns the host's overall measured reordering rate: the mean of
// all per-round forward and reverse rates across tests, which is what the
// Fig 5 CDF is computed over.
func (h *HostRecord) PathRate() float64 {
	var all []float64
	for _, t := range TestNames {
		all = append(all, h.FwdSeries[t]...)
		all = append(all, h.RevSeries[t]...)
	}
	return stats.Summarize(all).Mean
}

// SurveyReport aggregates the survey.
type SurveyReport struct {
	Config SurveyConfig
	Hosts  []*HostRecord
}

// CDF returns the Fig 5 curve: the empirical CDF of per-path reordering
// rates.
func (rep *SurveyReport) CDF() *stats.CDF {
	var rates []float64
	for _, h := range rep.Hosts {
		rates = append(rates, h.PathRate())
	}
	return stats.NewCDF(rates)
}

// FractionWithReordering returns the fraction of paths whose measured rate
// was nonzero (paper: over 40%).
func (rep *SurveyReport) FractionWithReordering() float64 {
	n := 0
	for _, h := range rep.Hosts {
		if h.PathRate() > 0 {
			n++
		}
	}
	if len(rep.Hosts) == 0 {
		return 0
	}
	return float64(n) / float64(len(rep.Hosts))
}

// FractionMeasurementsReordered returns the fraction of individual
// measurements with at least one reordered sample (paper: more than 15%).
func (rep *SurveyReport) FractionMeasurementsReordered() float64 {
	meas, hit := 0, 0
	for _, h := range rep.Hosts {
		meas += h.Measurements
		hit += h.WithReordering
	}
	if meas == 0 {
		return 0
	}
	return float64(hit) / float64(meas)
}

// DCTExclusions returns how many hosts were ruled out of the dual
// connection test, by reason (paper: 8 non-monotonic, 9 constant zero).
func (rep *SurveyReport) DCTExclusions() map[string]int {
	m := map[string]int{}
	for _, h := range rep.Hosts {
		if h.DCTExcluded != "" {
			m[h.DCTExcluded]++
		}
	}
	return m
}

// WriteText prints the per-host table, the Fig 5 CDF and the headline
// statistics.
func (rep *SurveyReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "E2/E6 survey: %d hosts x %d rounds x 4 tests, %d samples each\n",
		len(rep.Hosts), rep.Config.Rounds, rep.Config.Samples)
	fmt.Fprintf(w, "%-22s %-16s %-3s %9s %9s %9s  %s\n",
		"host", "ipid", "lb", "true-fwd", "sct-fwd", "syn-fwd", "dct")
	for _, h := range rep.Hosts {
		lb := ""
		if h.Balanced {
			lb = "lb"
		}
		dct := "ok"
		if h.DCTExcluded != "" {
			dct = "excluded:" + h.DCTExcluded
		}
		fmt.Fprintf(w, "%-22s %-16s %-3s %9.4f %9.4f %9.4f  %s\n",
			h.Name, h.IPIDPolicy, lb, h.TrueFwd, h.MeanFwd("single"), h.MeanFwd("syn"), dct)
	}
	fmt.Fprintf(w, "\nFig 5 CDF of per-path reordering rates:\n")
	for _, pt := range rep.CDF().Points() {
		fmt.Fprintf(w, "  rate<=%.4f: %.2f\n", pt.X, pt.Y)
	}
	fmt.Fprintf(w, "paths with some reordering: %.0f%% (paper: >40%%)\n", rep.FractionWithReordering()*100)
	fmt.Fprintf(w, "measurements with >=1 reordered sample: %.1f%% (paper: >15%%)\n",
		rep.FractionMeasurementsReordered()*100)
	ex := rep.DCTExclusions()
	fmt.Fprintf(w, "DCT exclusions: zero-ipid=%d non-monotonic=%d (paper: 9 and 8 of 50)\n",
		ex["zero-ipid"], ex["non-monotonic"])
}

// surveyHost is one synthesized host: a profile plus hidden path truth.
type surveyHost struct {
	name     string
	cfg      simnet.Config
	balanced bool
	fwd, rev float64
}

// synthesizePopulation builds the host list: a hand-picked slab modeled on
// the paper's "all major operating systems plus several highly popular
// (load-balanced) hosts", then random draws from the catalog.
//
// Path reordering truth is gap-dependent, the §IV-C physics: reordering
// paths route through a striped trunk with per-path cross-traffic
// intensity, so minimum-sized back-to-back probes see more reordering than
// serialization-spread data packets (the mechanism behind the transfer
// test's underestimation in §IV-B), plus a small slowly drifting swapper
// component so that measurements taken at different times genuinely
// differ, as on real paths. A bit under half the paths reorder at all, and
// forward intensity exceeds reverse.
func synthesizePopulation(cfg SurveyConfig) []surveyHost {
	rng := sim.NewRand(cfg.Seed, 0x50b)
	var hosts []surveyHost

	pathSpecs := func() (fwd, rev simnet.PathSpec, fi, ri float64) {
		fwd = simnet.PathSpec{LinkRate: 100_000_000}
		rev = simnet.PathSpec{LinkRate: 100_000_000}
		if rng.Float64() < 0.55 {
			return fwd, rev, 0, 0 // most paths are clean
		}
		fi = 0.03 + rng.ExpFloat64()*0.10 // trunk burst probability
		if fi > 0.5 {
			fi = 0.5
		}
		ri = fi * 0.35 // forward-dominant asymmetry (single vantage point)
		mean := 600 + rng.ExpFloat64()*900
		fwd.Trunk = &netem.TrunkConfig{FanOut: 2, RateBps: 622_000_000, BurstProb: fi, MeanBurstBytes: mean}
		rev.Trunk = &netem.TrunkConfig{FanOut: 2, RateBps: 622_000_000, BurstProb: ri, MeanBurstBytes: mean}
		// Slow drift: a residual swap component whose rate wanders over
		// tens of minutes, so interleaved tests see a moving target.
		amp := rng.Float64() * 0.035
		period := time.Duration(5+rng.IntN(25)) * time.Minute
		phase := rng.Float64() * 2 * math.Pi
		fwd.SwapProbFn = driftFn(amp, period, phase)
		rev.SwapProbFn = driftFn(amp*0.35, period, phase+1)
		return fwd, rev, fi, ri
	}

	add := func(name string, sc simnet.Config, balanced bool) {
		f, r, fi, ri := pathSpecs()
		sc.Seed = rng.Uint64()
		sc.Forward, sc.Reverse = f, r
		// Keep served objects small so each transfer-test round stays
		// around cfg.Samples segments, like the paper's root web objects.
		sc.Server.TCP.ObjectSize = (cfg.Samples + 1) * 256
		for i := range sc.Backends {
			sc.Backends[i].TCP.ObjectSize = (cfg.Samples + 1) * 256
		}
		hosts = append(hosts, surveyHost{name: name, cfg: sc, balanced: balanced, fwd: fi, rev: ri})
	}

	// The hand-picked 15: one per profile, plus popular load-balanced
	// sites (the paper's yahoo/hotmail analogues) and Linux 2.4 boxes.
	catalog := host.Catalog()
	for _, p := range catalog { // 8 profiles
		add("picked-"+p.Name, simnet.Config{Server: p}, false)
	}
	for i := 0; i < 3 && len(hosts) < cfg.Hosts; i++ { // 3 popular LB'd sites
		backends := []host.Profile{host.FreeBSD4(), host.Linux22(), host.Windows2000(), host.FreeBSD4()}
		add(fmt.Sprintf("popular-lb-%d", i), simnet.Config{Backends: backends}, true)
	}
	for i := 0; i < 3 && len(hosts) < cfg.Hosts; i++ { // 3 more Linux 2.4
		add(fmt.Sprintf("picked-linux24-%d", i), simnet.Config{Server: host.Linux24()}, false)
	}

	// Random fill to cfg.Hosts, weighted toward the common server OSes of
	// the era with a Linux 2.4 slab (paper: 9 zero-IPID hosts of 50).
	weighted := []host.Profile{
		host.FreeBSD4(), host.FreeBSD4(), host.FreeBSD4(), host.Linux22(), host.Linux22(),
		host.Linux22(), host.Linux24(), host.Linux24(), host.Linux24(),
		host.Windows2000(), host.Windows2000(), host.Windows2000(), host.Windows2000(),
		host.Solaris8(), host.Solaris8(), host.OpenBSD3(), host.OpenBSD3(),
		host.SpecStack(), host.FreeBSD4(), host.Linux22(),
	}
	for i := 0; len(hosts) < cfg.Hosts; i++ {
		p := weighted[rng.IntN(len(weighted))]
		if rng.Float64() < 0.06 { // a few random sites sit behind balancers
			add(fmt.Sprintf("random-lb-%d", i), simnet.Config{
				Backends: []host.Profile{p, p, host.FreeBSD4(), host.Linux22()},
			}, true)
			continue
		}
		add(fmt.Sprintf("random-%s-%d", p.Name, i), simnet.Config{Server: p}, false)
	}
	return hosts[:cfg.Hosts]
}

// driftFn builds a sinusoidal swap-probability drift.
func driftFn(amp float64, period time.Duration, phase float64) func(sim.Time) float64 {
	if amp <= 0 {
		return nil
	}
	return func(t sim.Time) float64 {
		return amp * 0.5 * (1 - math.Cos(2*math.Pi*float64(t)/float64(period)+phase))
	}
}

// RunSurvey executes E2 (Fig 5 CDF), collecting the series E4 needs and the
// E6 exclusion counts along the way. Hosts are surveyed concurrently by the
// campaign scheduler; because every host's scenario is self-contained and
// seeded during synthesis, the report is identical at any worker count.
func RunSurvey(cfg SurveyConfig) *SurveyReport {
	rep := &SurveyReport{Config: cfg}
	hosts := synthesizePopulation(cfg)
	recs := make([]*HostRecord, len(hosts))
	sched := campaign.NewScheduler(campaign.SchedulerConfig{Workers: cfg.Workers})
	// Each job writes only its own slot, so no locking is needed; a nil
	// emit skips the in-order delivery machinery.
	_ = sched.Run(0, len(hosts), func(worker, i, attempt int) error {
		recs[i] = surveyOneHost(hosts[i], cfg)
		return nil
	}, nil)
	rep.Hosts = recs
	sort.Slice(rep.Hosts, func(i, j int) bool { return rep.Hosts[i].Name < rep.Hosts[j].Name })
	return rep
}

func surveyOneHost(sh surveyHost, cfg SurveyConfig) *HostRecord {
	n := simnet.New(sh.cfg)
	rec := &HostRecord{
		Name:      sh.name,
		Balanced:  sh.balanced,
		TrueFwd:   sh.fwd,
		TrueRev:   sh.rev,
		FwdSeries: map[string][]float64{},
		RevSeries: map[string][]float64{},
	}
	rec.IPIDPolicy = n.Hosts[0].IPIDPolicy()
	prober := core.NewProber(n.Probe(), n.ServerAddr(), sh.cfg.Seed^0x9e9)

	// IPID prevalidation once up front, as the paper's survey did.
	dctOK := false
	if rep, err := prober.ValidateIPID(core.IPIDCheckOptions{Probes: 12}); err == nil {
		if rep.Usable() {
			dctOK = true
		} else if rep.Constant {
			rec.DCTExcluded = "zero-ipid"
		} else {
			rec.DCTExcluded = "non-monotonic"
		}
	} else {
		rec.DCTExcluded = "unreachable"
	}

	// The paper cycled round-robin across all hosts between tests, so two
	// techniques' measurements of one host were minutes apart; model that
	// spacing so the drifting process is genuinely sampled at different
	// times (this is why §IV-B's agreement is "paired" only under a
	// stationarity assumption).
	interTest := 90 * time.Second

	for round := 0; round < cfg.Rounds; round++ {
		for _, test := range TestNames {
			n.Probe().Sleep(interTest)
			var res *core.Result
			var err error
			switch test {
			case "single":
				res, err = prober.SingleConnectionTest(core.SCTOptions{Samples: cfg.Samples, Reversed: true})
			case "dual":
				if !dctOK {
					continue
				}
				res, err = prober.DualConnectionTest(core.DCTOptions{Samples: cfg.Samples})
			case "syn":
				res, err = prober.SYNTest(core.SYNOptions{Samples: cfg.Samples})
			case "transfer":
				res, err = prober.DataTransferTest(core.TransferOptions{IdleTimeout: 500 * time.Millisecond})
			}
			if err != nil {
				continue
			}
			rec.Measurements++
			if res.AnyReordering() {
				rec.WithReordering++
			}
			if f := res.Forward(); f.Valid() > 0 {
				rec.FwdSeries[test] = append(rec.FwdSeries[test], f.Rate())
			}
			if r := res.Reverse(); r.Valid() > 0 {
				rec.RevSeries[test] = append(rec.RevSeries[test], r.Rate())
			}
		}
	}
	return rec
}
