package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// CSV emitters for every report, so the paper's figures can be regenerated
// with any plotting tool. Columns are documented per writer; all numbers
// use Go's shortest-roundtrip float formatting.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV emits gap_us,rate,samples — the Fig 7 series.
func (rep *GapSweepReport) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(rep.Points))
	for _, p := range rep.Points {
		rows = append(rows, []string{
			f64(float64(p.Gap.Nanoseconds()) / 1e3), f64(p.Rate), strconv.Itoa(p.Valid),
		})
	}
	return writeCSV(w, []string{"gap_us", "rate", "samples"}, rows)
}

// WriteCSV emits mechanism,gap_us,rate — the E8 curves in long form.
func (rep *MechanismsReport) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, c := range rep.Curves {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.Name, f64(float64(p.Gap.Nanoseconds()) / 1e3), f64(p.Rate),
			})
		}
	}
	return writeCSV(w, []string{"mechanism", "gap_us", "rate"}, rows)
}

// WriteCSV emits t_s,true_rate,sct_rate,syn_rate — the Fig 6 series.
func (rep *TimeSeriesReport) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(rep.Points))
	for _, p := range rep.Points {
		rows = append(rows, []string{
			f64(p.At.Seconds()), f64(p.TrueRate), f64(p.SCT), f64(p.SYN),
		})
	}
	return writeCSV(w, []string{"t_s", "true_rate", "sct_rate", "syn_rate"}, rows)
}

// WriteCSV emits rate,cdf — the Fig 5 step function.
func (rep *SurveyReport) WriteCSV(w io.Writer) error {
	pts := rep.CDF().Points()
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{f64(p.X), f64(p.Y)})
	}
	return writeCSV(w, []string{"rate", "cdf"}, rows)
}

// WriteCSV emits one row per impact-sweep intensity.
func (rep *ImpactReport) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		rows = append(rows, []string{
			f64(float64(r.Jitter.Nanoseconds()) / 1e3),
			f64(r.MeasuredRate), f64(r.PredictedDeepFrac),
			f64(r.Reno.Throughput()), strconv.Itoa(r.Reno.CwndHalvings),
			f64(r.Adaptive.Throughput()), strconv.Itoa(r.Adaptive.CwndHalvings),
			strconv.Itoa(r.Adaptive.FinalDupThresh),
		})
	}
	return writeCSV(w, []string{
		"jitter_us", "pair_rate", "deep_frac",
		"reno_bps", "reno_halvings", "adaptive_bps", "adaptive_halvings", "final_dupthresh",
	}, rows)
}

// WriteCSV emits one row per validation run with tool and truth counts.
func (rep *ValidationReport) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(rep.Runs))
	for _, r := range rep.Runs {
		rows = append(rows, []string{
			r.Test, f64(r.FwdRate), f64(r.RevRate), strconv.Itoa(r.Samples),
			strconv.Itoa(r.ToolFwd), strconv.Itoa(r.TruthFwd),
			strconv.Itoa(r.ToolRev), strconv.Itoa(r.TruthRev),
		})
	}
	return writeCSV(w, []string{
		"test", "fwd_rate", "rev_rate", "samples",
		"tool_fwd", "truth_fwd", "tool_rev", "truth_rev",
	}, rows)
}
