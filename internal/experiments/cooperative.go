package experiments

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/ippm"
	"reorder/internal/simnet"
)

// CooperativeConfig parameterizes E10, an extension experiment: the
// single-ended dual connection test validated against a cooperative
// IETF-IPPM-style session ([8]) on identical paths. The cooperative
// receiver sees the exact arrival order, so it is ground truth with
// deployment cost; the paper's technique must track it without any remote
// deployment.
type CooperativeConfig struct {
	// SwapProbs are the path intensities to compare at.
	SwapProbs []float64
	// Samples per measurement (both methodologies).
	Samples int
	// Seed drives everything.
	Seed uint64
}

// DefaultCooperative returns the full-scale configuration.
func DefaultCooperative() CooperativeConfig {
	return CooperativeConfig{
		SwapProbs: []float64{0, 0.01, 0.03, 0.05, 0.10, 0.15, 0.40},
		Samples:   400,
		Seed:      111,
	}
}

// QuickCooperative is the benchmark-scale version.
func QuickCooperative() CooperativeConfig {
	return CooperativeConfig{SwapProbs: []float64{0, 0.10, 0.40}, Samples: 150, Seed: 111}
}

// CooperativeRow is one intensity's comparison.
type CooperativeRow struct {
	SwapProb float64
	// DCTRate is the single-ended forward estimate.
	DCTRate float64
	// IPPMRate is the cooperative receiver's exchange ratio.
	IPPMRate float64
	// IPPMReorderedRatio is the RFC-4737-style reordered-packet ratio.
	IPPMReorderedRatio float64
}

// CooperativeReport aggregates the sweep.
type CooperativeReport struct {
	Rows []CooperativeRow
}

// MaxDisagreement returns the largest |DCT - IPPM| exchange-rate gap.
func (rep *CooperativeReport) MaxDisagreement() float64 {
	worst := 0.0
	for _, r := range rep.Rows {
		d := r.DCTRate - r.IPPMRate
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// WriteText prints the comparison.
func (rep *CooperativeReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E10 (extension) single-ended DCT vs cooperative IPPM session, same paths")
	fmt.Fprintf(w, "%8s %10s %10s %12s\n", "swap", "dct-rate", "ippm-rate", "ippm-reord")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%8.2f %10.4f %10.4f %12.4f\n",
			r.SwapProb, r.DCTRate, r.IPPMRate, r.IPPMReorderedRatio)
	}
	fmt.Fprintf(w, "max |dct-ippm| disagreement: %.4f\n", rep.MaxDisagreement())
}

// RunCooperative executes E10.
func RunCooperative(cfg CooperativeConfig) (*CooperativeReport, error) {
	if len(cfg.SwapProbs) == 0 {
		cfg = DefaultCooperative()
	}
	rep := &CooperativeReport{}
	for i, sp := range cfg.SwapProbs {
		seed := cfg.Seed + uint64(i)*17
		row := CooperativeRow{SwapProb: sp}

		// Single-ended measurement: no remote deployment.
		dn := simnet.New(simnet.Config{
			Seed: seed, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{SwapProb: sp},
		})
		prober := core.NewProber(dn.Probe(), dn.ServerAddr(), seed^0xc0)
		res, err := prober.DualConnectionTest(core.DCTOptions{Samples: cfg.Samples})
		if err != nil {
			return nil, err
		}
		row.DCTRate = res.Forward().Rate()

		// Cooperative measurement: receiver deployed on the host.
		cn := simnet.New(simnet.Config{
			Seed: seed, Server: host.FreeBSD4(),
			Forward: simnet.PathSpec{SwapProb: sp},
		})
		recv := ippm.Attach(cn.Hosts[0], cn.Loop, 0)
		// Pair up the test packets the way the DCT does (back-to-back
		// pairs separated by a pause) so the two methodologies sample the
		// same process identically.
		irep, err := ippm.RunSession(cn.Probe(), cn.ServerAddr(), recv, ippm.SessionConfig{
			Count: cfg.Samples * 2,
			Gap:   0,
			Drain: 2 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		row.IPPMRate = irep.Metrics.ExchangeRatio()
		row.IPPMReorderedRatio = irep.Metrics.Ratio()
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
