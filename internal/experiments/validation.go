// Package experiments contains one runner per table and figure of the
// paper's evaluation (§IV), each reproducing the corresponding workload on
// the simulated substrate and returning a typed report that the command-
// line tools print and the benchmarks regenerate. DESIGN.md maps experiment
// IDs (E1..E7) to these runners.
package experiments

import (
	"fmt"
	"io"

	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/simnet"
)

// ValidationConfig parameterizes E1, the §IV-A controlled validation: a
// dummynet-style swapper is configured with known forward and reverse
// reordering rates, each technique takes its samples, and the tool's
// verdicts are checked against trace ground truth.
type ValidationConfig struct {
	// Rates are the swap probabilities to sweep on each path (paper:
	// 1, 3, 5, 10, 15 and 40 percent).
	Rates []float64
	// Samples per run (paper: 100).
	Samples int
	// Seed makes the report reproducible.
	Seed uint64
	// Workers caps the parallel runs (default: GOMAXPROCS). Each run is
	// hermetic — its own scenario and prober derive from its seed alone —
	// so the report is identical at any worker count.
	Workers int
}

// DefaultValidation returns the paper's full grid: 36 rate combinations
// for each of the three bidirectional tests plus 6 reverse-only data
// transfer runs — 114 runs of 100 samples.
func DefaultValidation() ValidationConfig {
	return ValidationConfig{
		Rates:   []float64{0.01, 0.03, 0.05, 0.10, 0.15, 0.40},
		Samples: 100,
		Seed:    2002,
	}
}

// QuickValidation is a reduced grid for benchmarks and smoke tests.
func QuickValidation() ValidationConfig {
	return ValidationConfig{Rates: []float64{0.05, 0.40}, Samples: 20, Seed: 2002}
}

// ValidationRun is one (test, forward rate, reverse rate) cell.
type ValidationRun struct {
	Test             string
	FwdRate, RevRate float64
	Samples          int // valid samples compared against ground truth
	ToolFwd          int // reordered per the tool
	TruthFwd         int // reordered per the trace
	ToolRev          int
	TruthRev         int
	Err              string // non-empty if the run failed outright
}

// FwdDiscrepancy is |tool - truth| for the forward direction.
func (r ValidationRun) FwdDiscrepancy() int { return abs(r.ToolFwd - r.TruthFwd) }

// RevDiscrepancy is |tool - truth| for the reverse direction.
func (r ValidationRun) RevDiscrepancy() int { return abs(r.ToolRev - r.TruthRev) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ValidationReport aggregates all runs.
type ValidationReport struct {
	Runs         []ValidationRun
	TotalSamples int
}

// Discrepancies returns the number of runs with a nonzero forward and
// reverse discrepancy (the paper reports 8 and 2 out of 114).
func (rep *ValidationReport) Discrepancies() (fwd, rev int) {
	for _, r := range rep.Runs {
		if r.FwdDiscrepancy() > 0 {
			fwd++
		}
		if r.RevDiscrepancy() > 0 {
			rev++
		}
	}
	return fwd, rev
}

// CorrectFraction returns the fraction of samples whose verdict matched
// ground truth (the paper's 99.99%).
func (rep *ValidationReport) CorrectFraction() float64 {
	if rep.TotalSamples == 0 {
		return 0
	}
	wrong := 0
	for _, r := range rep.Runs {
		wrong += r.FwdDiscrepancy() + r.RevDiscrepancy()
	}
	return 1 - float64(wrong)/float64(rep.TotalSamples)
}

// WriteText prints the report as the paper-style table.
func (rep *ValidationReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "E1 controlled validation (%d runs, %d samples)\n", len(rep.Runs), rep.TotalSamples)
	fmt.Fprintf(w, "%-9s %5s %5s %8s %9s %9s %9s %9s\n",
		"test", "fwd%", "rev%", "samples", "tool-fwd", "true-fwd", "tool-rev", "true-rev")
	for _, r := range rep.Runs {
		if r.Err != "" {
			fmt.Fprintf(w, "%-9s %5.1f %5.1f  error: %s\n", r.Test, r.FwdRate*100, r.RevRate*100, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-9s %5.1f %5.1f %8d %9d %9d %9d %9d\n",
			r.Test, r.FwdRate*100, r.RevRate*100, r.Samples, r.ToolFwd, r.TruthFwd, r.ToolRev, r.TruthRev)
	}
	f, v := rep.Discrepancies()
	fmt.Fprintf(w, "runs with discrepancy: forward=%d reverse=%d; samples correct: %.4f%%\n",
		f, v, rep.CorrectFraction()*100)
}

// validationSpec is one grid cell waiting to run: the flattened form of
// the historical nested loops, in the exact order (and with the exact
// seed sequence) they used to execute in.
type validationSpec struct {
	test     string
	fwd, rev float64
	seed     uint64
}

// RunValidation executes E1. The grid runs through the campaign span
// scheduler — each cell is hermetic, so cells parallelize freely — and the
// report lists cells in the same order the old sequential loops produced.
func RunValidation(cfg ValidationConfig) *ValidationReport {
	var specs []validationSpec
	seed := cfg.Seed
	for _, fr := range cfg.Rates {
		for _, rr := range cfg.Rates {
			for _, test := range []string{"single", "dual", "syn"} {
				seed++
				specs = append(specs, validationSpec{test: test, fwd: fr, rev: rr, seed: seed})
			}
		}
	}
	// Data transfer: reverse-only manipulation, per the paper.
	for _, rr := range cfg.Rates {
		seed++
		specs = append(specs, validationSpec{test: "transfer", rev: rr, seed: seed})
	}

	rep := &ValidationReport{Runs: make([]ValidationRun, len(specs))}
	sched := campaign.NewScheduler(campaign.SchedulerConfig{Workers: cfg.Workers})
	// Job results land at their own index, so emit order is irrelevant;
	// RunSpans still requires an emit hook, hence the no-op.
	err := sched.RunSpans(0, len(specs), nil,
		func(worker, i, attempt int) error {
			sp := specs[i]
			if sp.test == "transfer" {
				rep.Runs[i] = validateTransferRun(sp.rev, cfg.Samples, sp.seed)
			} else {
				rep.Runs[i] = validateRun(sp.test, sp.fwd, sp.rev, cfg.Samples, sp.seed)
			}
			return nil
		},
		func(lo, hi int) error { return nil })
	if err != nil {
		// Jobs never return errors; a scheduler failure here is a bug.
		panic("experiments: validation scheduler failed: " + err.Error())
	}
	for _, r := range rep.Runs {
		rep.TotalSamples += 2 * r.Samples // one verdict per direction
	}
	return rep
}

// validationProfile is the server used by E1: delayed ACKs on (the hard
// case for the single connection test) and a global-counter IPID.
func validationProfile() host.Profile { return host.FreeBSD4() }

func validateRun(test string, fr, rr float64, samples int, seed uint64) ValidationRun {
	run := ValidationRun{Test: test, FwdRate: fr, RevRate: rr}
	n := simnet.New(simnet.Config{
		Seed:    seed,
		Server:  validationProfile(),
		Forward: simnet.PathSpec{SwapProb: fr},
		Reverse: simnet.PathSpec{SwapProb: rr},
	})
	p := core.NewProber(n.Probe(), n.ServerAddr(), seed^0xabc)
	var res *core.Result
	var err error
	switch test {
	case "single":
		// Reversed sends: the delayed-ACK-resistant variant (§III-B).
		res, err = p.SingleConnectionTest(core.SCTOptions{Samples: samples, Reversed: true})
	case "dual":
		res, err = p.DualConnectionTest(core.DCTOptions{Samples: samples})
	case "syn":
		res, err = p.SYNTest(core.SYNOptions{Samples: samples})
	}
	if err != nil {
		run.Err = err.Error()
		return run
	}
	for _, s := range res.Samples {
		scoreSample(&run, n, s)
	}
	return run
}

// scoreSample compares one sample's verdicts against the captures.
func scoreSample(run *ValidationRun, n *simnet.Net, s core.Sample) {
	if s.Forward.Valid() {
		if truth, ok := n.HostIngress.Exchanged(s.SentIDs[0], s.SentIDs[1]); ok {
			run.Samples++
			if s.Forward == core.VerdictReordered {
				run.ToolFwd++
			}
			if truth {
				run.TruthFwd++
			}
			if s.Reverse.Valid() && s.ReplyIDs[0] != 0 && s.ReplyIDs[1] != 0 {
				// Reverse truth: ReplyIDs are in probe arrival order; if the
				// first-received was sent later by the host, they exchanged.
				i, ok1 := n.HostEgress.Position(s.ReplyIDs[0])
				j, ok2 := n.HostEgress.Position(s.ReplyIDs[1])
				if ok1 && ok2 {
					if s.Reverse == core.VerdictReordered {
						run.ToolRev++
					}
					if i > j {
						run.TruthRev++
					}
				}
			}
		}
	}
}

func validateTransferRun(rr float64, samples int, seed uint64) ValidationRun {
	run := ValidationRun{Test: "transfer", RevRate: rr}
	prof := validationProfile()
	// Size the object so the transfer yields about `samples` adjacent
	// pairs at the default clamped MSS of 256.
	prof.TCP.ObjectSize = (samples + 1) * 256
	n := simnet.New(simnet.Config{
		Seed:    seed,
		Server:  prof,
		Reverse: simnet.PathSpec{SwapProb: rr},
	})
	p := core.NewProber(n.Probe(), n.ServerAddr(), seed^0xabc)
	res, err := p.DataTransferTest(core.TransferOptions{})
	if err != nil {
		run.Err = err.Error()
		return run
	}
	for _, s := range res.Samples {
		if s.Reverse.Valid() {
			run.Samples++
			if s.Reverse == core.VerdictReordered {
				run.ToolRev++
			}
		}
	}
	run.TruthRev = transferTruth(n)
	return run
}

// transferTruth counts adjacent first-arrival exchanges of the transfer's
// data packets by comparing host-egress send order with probe-ingress
// arrival order — the trace analysis of §IV-A.
func transferTruth(n *simnet.Net) int {
	egressPos := func(id uint64) (int, bool) { return n.HostEgress.Position(id) }
	var positions []int
	seenSeq := map[uint32]bool{}
	for _, rec := range n.ProbeIngress.Records() {
		p, err := rec.Decode()
		if err != nil || p.TCP == nil || len(p.Payload) == 0 || p.IP.Src != n.ServerAddr() {
			continue
		}
		if seenSeq[p.TCP.Seq] {
			continue // retransmission: tool skips these too
		}
		seenSeq[p.TCP.Seq] = true
		if i, ok := egressPos(rec.FrameID); ok {
			positions = append(positions, i)
		}
	}
	exchanges := 0
	for i := 1; i < len(positions); i++ {
		if positions[i] < positions[i-1] {
			exchanges++
		}
	}
	return exchanges
}
