package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestMechanismSignatures(t *testing.T) {
	rep, err := RunMechanisms(QuickMechanisms())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 3 {
		t.Fatalf("curves = %d", len(rep.Curves))
	}

	trunk, ok := rep.Curve("trunk")
	if !ok {
		t.Fatal("trunk curve missing")
	}
	// Exponential decay: strong at 0, gone by 250µs.
	if trunk.RateAt(0) < 0.05 {
		t.Errorf("trunk at 0 = %.4f", trunk.RateAt(0))
	}
	if trunk.RateAt(250*time.Microsecond) > 0.02 {
		t.Errorf("trunk at 250µs = %.4f, want ≈0", trunk.RateAt(250*time.Microsecond))
	}

	mp, ok := rep.Curve("multipath")
	if !ok {
		t.Fatal("multipath curve missing")
	}
	// Step signature: every pair inside the 150µs spread reorders (the
	// second packet takes the faster member), none beyond it.
	if mp.RateAt(0) < 0.9 {
		t.Errorf("multipath at 0 = %.4f, want ≈1", mp.RateAt(0))
	}
	if mp.RateAt(100*time.Microsecond) < 0.9 {
		t.Errorf("multipath at 100µs = %.4f, want ≈1 (inside spread)", mp.RateAt(100*time.Microsecond))
	}
	if mp.RateAt(250*time.Microsecond) > 0.05 {
		t.Errorf("multipath at 250µs = %.4f, want ≈0 (beyond spread)", mp.RateAt(250*time.Microsecond))
	}

	arq, ok := rep.Curve("l2-arq")
	if !ok {
		t.Fatal("l2-arq curve missing")
	}
	// Long flat tail: roughly the frame error rate out to the retransmit
	// delay (2ms), then gone.
	if r := arq.RateAt(500 * time.Microsecond); r < 0.04 {
		t.Errorf("arq at 500µs = %.4f, want ≈FER (long tail)", r)
	}
	if r := arq.RateAt(4 * time.Millisecond); r > 0.03 {
		t.Errorf("arq at 4ms = %.4f, want ≈0 (beyond recovery window)", r)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "E8") {
		t.Error("report text missing header")
	}
}
