package experiments

import (
	"fmt"
	"io"

	"reorder/internal/campaign"
	"reorder/internal/stats"
)

// CongestionConfig parameterizes the routed-topology experiment: a campaign
// over graph topologies whose only source of reordering is congestion —
// background TCP flows contending for shared router queues and parallel
// link bundles — measured by the paper's single-packet, dual-packet and
// SACK-based (data transfer) techniques and cross-checked for agreement.
type CongestionConfig struct {
	// Topologies are registry names (default: every named topology,
	// "p2p" control included).
	Topologies []string
	// Replicas is how many seeds per topology×test cell (default 8).
	Replicas int
	// Samples per probe (default 16).
	Samples int
	// Workers caps campaign parallelism (default: GOMAXPROCS).
	Workers int
	// Seed offsets the derived per-target seeds.
	Seed uint64
	// Confidence for the paired-difference agreement test (default 99.9%).
	Confidence float64
}

// congestionTests are the techniques compared: single-packet, dual-packet
// and the SACK-based data transfer test, per the acceptance scenario.
var congestionTests = []string{"single", "dual", "transfer"}

// CongestionCell aggregates one topology×test combination.
type CongestionCell struct {
	Topology string
	Test     string
	Targets  int // probes that produced a measurement
	Excluded int // probes excluded (errors, IPID prevalidation)
	// Reordering is the fraction of measurements with at least one
	// reordered sample.
	Reordering float64
	// MeanFwdRate and MeanRevRate average the per-probe reordering rates.
	MeanFwdRate, MeanRevRate float64
}

// CongestionReport is the experiment's output: per-cell reordering
// incidence plus, per topology, the technique-agreement pairs.
type CongestionReport struct {
	Cells      []CongestionCell
	Agreement  map[string][]AgreementPair
	Confidence float64
}

// Cell returns the (topology, test) cell, if present.
func (rep *CongestionReport) Cell(topology, test string) (CongestionCell, bool) {
	for _, c := range rep.Cells {
		if c.Topology == topology && c.Test == test {
			return c, true
		}
	}
	return CongestionCell{}, false
}

// WriteText prints the per-cell table and the per-topology agreement pairs.
func (rep *CongestionReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "congestion-induced reordering over routed topologies (clean paths, cross-traffic only)\n")
	fmt.Fprintf(w, "%-12s %-9s %7s %8s %10s %9s %9s\n",
		"topology", "test", "targets", "excluded", "reordering", "fwd-rate", "rev-rate")
	for _, c := range rep.Cells {
		fmt.Fprintf(w, "%-12s %-9s %7d %8d %9.0f%% %9.4f %9.4f\n",
			c.Topology, c.Test, c.Targets, c.Excluded, c.Reordering*100, c.MeanFwdRate, c.MeanRevRate)
	}
	fmt.Fprintf(w, "\ntechnique agreement per topology (paired-difference @ %.1f%% confidence)\n", rep.Confidence*100)
	fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %6s %7s\n", "topology", "test-a", "test-b", "dir", "series", "null-ok")
	for _, c := range rep.Cells {
		// Emit each topology's pairs once, on its first cell.
		if c.Test != congestionTests[0] {
			continue
		}
		for _, p := range rep.Agreement[c.Topology] {
			fmt.Fprintf(w, "%-12s %-10s %-10s %-8s %6d %7d\n",
				c.Topology, p.TestA, p.TestB, p.Direction, p.Hosts, p.NullOK)
		}
	}
}

// RunCongestion executes the routed-topology experiment: enumerate
// topology × test × replica targets over the clean impairment (so any
// reordering is congestion's doing), probe them through the campaign
// machinery, and compare technique verdicts per topology.
func RunCongestion(cfg CongestionConfig) (*CongestionReport, error) {
	if len(cfg.Topologies) == 0 {
		cfg.Topologies = campaign.TopologyNames()
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 8
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 16
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.999
	}
	targets, err := campaign.Enumerate(campaign.EnumSpec{
		Profiles:    []string{"freebsd4"},
		Impairments: []string{"clean"},
		Tests:       congestionTests,
		Seeds:       cfg.Replicas,
		BaseSeed:    cfg.Seed,
		Topologies:  cfg.Topologies,
	})
	if err != nil {
		return nil, err
	}

	results := make([]campaign.TargetResult, 0, len(targets))
	sink := campaign.FuncSink(func(r *campaign.TargetResult) error {
		results = append(results, *r)
		return nil
	})
	if _, err := campaign.Run(campaign.Config{
		Targets: targets, Samples: cfg.Samples, Workers: cfg.Workers,
		Sinks: []campaign.Sink{sink},
	}); err != nil {
		return nil, err
	}

	rep := &CongestionReport{Confidence: cfg.Confidence, Agreement: map[string][]AgreementPair{}}
	// Replica-paired rate series per topology×test×direction: replica r of
	// every technique probes the same scenario seed (deriveSeed excludes
	// the test), so series index pairs are genuinely paired measurements.
	type key struct{ topo, test string }
	fwd := map[key][]float64{}
	rev := map[key][]float64{}
	for _, topo := range cfg.Topologies {
		for _, test := range congestionTests {
			cell := CongestionCell{Topology: topo, Test: test}
			k := key{topo, test}
			for _, r := range results {
				if r.Topology != topo || r.Test != test {
					continue
				}
				if r.Err != "" || r.DCTExcluded != "" {
					cell.Excluded++
					// Keep series index-aligned across techniques: a missing
					// replica measurement pairs as NaN-free zero-rate, which
					// the small replica counts here tolerate better than
					// misaligned pairs.
					fwd[k] = append(fwd[k], 0)
					rev[k] = append(rev[k], 0)
					continue
				}
				cell.Targets++
				if r.AnyReordering {
					cell.Reordering++
				}
				cell.MeanFwdRate += r.FwdRate
				cell.MeanRevRate += r.RevRate
				fwd[k] = append(fwd[k], r.FwdRate)
				rev[k] = append(rev[k], r.RevRate)
			}
			if cell.Targets > 0 {
				cell.Reordering /= float64(cell.Targets)
				cell.MeanFwdRate /= float64(cell.Targets)
				cell.MeanRevRate /= float64(cell.Targets)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}

	for _, topo := range cfg.Topologies {
		var pairs []AgreementPair
		for i, a := range congestionTests {
			for _, b := range congestionTests[i+1:] {
				for _, dir := range []string{"forward", "reverse"} {
					if dir == "forward" && (a == "transfer" || b == "transfer") {
						continue // the transfer test has no forward direction
					}
					series := fwd
					if dir == "reverse" {
						series = rev
					}
					sa, sb := series[key{topo, a}], series[key{topo, b}]
					n := min(len(sa), len(sb))
					if n < 3 {
						continue
					}
					pair := AgreementPair{TestA: a, TestB: b, Direction: dir, Hosts: 1}
					if stats.PairDifference(sa[:n], sb[:n], cfg.Confidence).NullSupported {
						pair.NullOK = 1
					}
					pairs = append(pairs, pair)
				}
			}
		}
		rep.Agreement[topo] = pairs
	}
	return rep, nil
}
