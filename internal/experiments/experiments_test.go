package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestValidationQuickGrid(t *testing.T) {
	rep := RunValidation(QuickValidation())
	// 2 rates -> 4 combos x 3 tests + 2 transfer runs = 14 runs.
	if len(rep.Runs) != 14 {
		t.Fatalf("runs = %d, want 14", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Fatalf("run %s fwd=%v rev=%v failed: %s", r.Test, r.FwdRate, r.RevRate, r.Err)
		}
		if r.Samples == 0 {
			t.Fatalf("run %s produced no comparable samples", r.Test)
		}
	}
	// The paper's headline: nearly all samples agree with ground truth.
	if frac := rep.CorrectFraction(); frac < 0.99 {
		t.Fatalf("CorrectFraction = %.4f, want >= 0.99", frac)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	for _, want := range []string{"E1", "tool-fwd", "correct"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report text missing %q", want)
		}
	}
}

func TestValidationToolTracksConfiguredRate(t *testing.T) {
	cfg := ValidationConfig{Rates: []float64{0.40}, Samples: 120, Seed: 9}
	rep := RunValidation(cfg)
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Test, r.Err)
		}
		if r.Test == "transfer" {
			continue
		}
		rate := float64(r.ToolFwd) / float64(r.Samples)
		// The swapper approximates the configured probability; wide
		// tolerance covers binomial noise at n=120.
		if rate < 0.25 || rate > 0.55 {
			t.Errorf("%s at 40%%: measured %.3f", r.Test, rate)
		}
	}
}

func TestSurveyQuick(t *testing.T) {
	rep := RunSurvey(QuickSurvey())
	if len(rep.Hosts) != 12 {
		t.Fatalf("hosts = %d", len(rep.Hosts))
	}
	for _, h := range rep.Hosts {
		if h.Measurements == 0 {
			t.Fatalf("host %s has no measurements", h.Name)
		}
	}
	// Population synthesis guarantees both exclusion classes appear.
	ex := rep.DCTExclusions()
	if ex["zero-ipid"] == 0 {
		t.Error("no zero-IPID hosts in population")
	}
	// Shape checks (Fig 5 neighborhood): some but not all paths reorder.
	frac := rep.FractionWithReordering()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("FractionWithReordering = %v", frac)
	}
	cdf := rep.CDF()
	if cdf.N() != 12 {
		t.Fatalf("CDF over %d paths", cdf.N())
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "Fig 5") {
		t.Error("report text missing CDF section")
	}
}

func TestAgreementFromSurvey(t *testing.T) {
	cfg := QuickSurvey()
	cfg.Rounds = 8
	survey := RunSurvey(cfg)
	rep := RunAgreement(survey, 0.999)
	if len(rep.Pairs) == 0 {
		t.Fatal("no pairs compared")
	}
	// Forward transfer pairs must be absent; reverse ones present.
	if _, ok := rep.Pair("single", "transfer", "forward"); ok {
		t.Error("transfer compared on the forward path")
	}
	p, ok := rep.Pair("single", "syn", "forward")
	if !ok || p.Hosts == 0 {
		t.Fatalf("single/syn forward pair missing or empty: %+v", p)
	}
	// The two sound techniques measure the same process: most hosts
	// must support the null hypothesis (paper: 78% forward).
	if p.NullFraction() < 0.5 {
		t.Errorf("single/syn forward agreement %.2f, want >= 0.5", p.NullFraction())
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "E4") {
		t.Error("report text missing header")
	}
}

func TestTimeSeriesQuick(t *testing.T) {
	rep, err := RunTimeSeries(QuickTimeSeries())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != QuickTimeSeries().Rounds {
		t.Fatalf("points = %d", len(rep.Points))
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "Fig 6") {
		t.Error("report text missing header")
	}
}

func TestTimeSeriesTracksDrift(t *testing.T) {
	cfg := TimeSeriesConfig{Rounds: 24, Samples: 30, Period: 4 * time.Minute, PeakRate: 0.25, Seed: 67}
	rep, err := RunTimeSeries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both techniques must see the drifting process: correlate the
	// measured series against the configured truth.
	var truth, sct, syn []float64
	for _, p := range rep.Points {
		truth = append(truth, p.TrueRate)
		sct = append(sct, p.SCT)
		syn = append(syn, p.SYN)
	}
	if c := pearson(truth, sct); c < 0.5 {
		t.Errorf("SCT/truth correlation %.3f, want >= 0.5", c)
	}
	if c := pearson(truth, syn); c < 0.5 {
		t.Errorf("SYN/truth correlation %.3f, want >= 0.5", c)
	}
	// And with each other (the Fig 6 visual claim).
	if c := rep.Correlation(); c < 0.4 {
		t.Errorf("SCT/SYN correlation %.3f, want >= 0.4", c)
	}
}

func TestGapSweepShape(t *testing.T) {
	rep, err := RunGapSweep(QuickGapSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) < 8 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// The Fig 7 shape: >5% back to back, decayed by 50µs, ~0 at 250µs+.
	r0 := rep.RateAt(0)
	r50 := rep.RateAt(50 * time.Microsecond)
	r250 := rep.RateAt(250 * time.Microsecond)
	if r0 < 0.05 {
		t.Errorf("rate at 0 = %.4f, want >= 0.05", r0)
	}
	if r50 >= r0 {
		t.Errorf("no decay: r0=%.4f r50=%.4f", r0, r50)
	}
	if r250 > 0.02 {
		t.Errorf("rate at 250µs = %.4f, want ≈0", r250)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "Fig 7") {
		t.Error("report text missing header")
	}
}

func TestGapScheduleMatchesPaper(t *testing.T) {
	gaps := DefaultGapSweep().gaps()
	// 1µs steps over [0,200) = 200 points, then 20µs steps 200..500 = 16.
	if len(gaps) != 216 {
		t.Fatalf("schedule has %d points, want 216", len(gaps))
	}
	if gaps[1]-gaps[0] != time.Microsecond {
		t.Error("fine step wrong")
	}
	if gaps[len(gaps)-1] != 500*time.Microsecond {
		t.Errorf("last gap = %v", gaps[len(gaps)-1])
	}
}

func TestBaselinesQuick(t *testing.T) {
	rep, err := RunBaselines(QuickBaselines())
	if err != nil {
		t.Fatal(err)
	}
	// On a 35%-swap path nearly every 5-packet burst reorders (Bennett's
	// >90% finding).
	if rep.SmallBurstReordered < 0.7 {
		t.Errorf("small bursts reordered = %.2f, want >= 0.7", rep.SmallBurstReordered)
	}
	if rep.LargeBurstMeanSACK < 1 {
		t.Errorf("large burst SACK metric = %.1f, want >= 1", rep.LargeBurstMeanSACK)
	}
	if rep.PaxsonSessions == 0 || rep.PaxsonSessionsReordered == 0 {
		t.Errorf("Paxson analysis: %d/%d", rep.PaxsonSessionsReordered, rep.PaxsonSessions)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "E7") {
		t.Error("report text missing header")
	}
}

func TestValidationDeterministic(t *testing.T) {
	a := RunValidation(QuickValidation())
	b := RunValidation(QuickValidation())
	if len(a.Runs) != len(b.Runs) {
		t.Fatal("run counts differ")
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, a.Runs[i], b.Runs[i])
		}
	}
}
