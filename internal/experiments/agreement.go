package experiments

import (
	"fmt"
	"io"

	"reorder/internal/stats"
)

// AgreementPair is the §IV-B paired-difference comparison of two techniques
// across the surveyed hosts: for each host, their per-round rate series are
// compared at 99.9% confidence; NullFraction is the fraction of comparable
// hosts for which the difference is explicable by intra-test variability.
type AgreementPair struct {
	TestA, TestB string
	Direction    string // "forward" or "reverse"
	Hosts        int    // hosts with enough rounds of both tests
	NullOK       int    // hosts supporting the null hypothesis
}

// NullFraction returns NullOK/Hosts (the paper's 78%, 93%, ... numbers).
func (a AgreementPair) NullFraction() float64 {
	if a.Hosts == 0 {
		return 0
	}
	return float64(a.NullOK) / float64(a.Hosts)
}

// AgreementReport holds all pairwise comparisons.
type AgreementReport struct {
	Confidence float64
	Pairs      []AgreementPair
}

// Pair returns the comparison for (a, b, direction), if present.
func (rep *AgreementReport) Pair(a, b, dir string) (AgreementPair, bool) {
	for _, p := range rep.Pairs {
		if p.TestA == a && p.TestB == b && p.Direction == dir {
			return p, true
		}
	}
	return AgreementPair{}, false
}

// WriteText prints the pairwise table.
func (rep *AgreementReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "E4 technique agreement (paired-difference test @ %.1f%% confidence)\n", rep.Confidence*100)
	fmt.Fprintf(w, "%-10s %-10s %-8s %6s %7s %9s\n", "test-a", "test-b", "dir", "hosts", "null-ok", "fraction")
	for _, p := range rep.Pairs {
		fmt.Fprintf(w, "%-10s %-10s %-8s %6d %7d %8.0f%%\n",
			p.TestA, p.TestB, p.Direction, p.Hosts, p.NullOK, p.NullFraction()*100)
	}
}

// RunAgreement executes E4 over a completed survey. The comparison treats
// the two series as paired per round, under the paper's stationarity
// assumption (the measurements were taken at interleaved times).
func RunAgreement(survey *SurveyReport, confidence float64) *AgreementReport {
	if confidence == 0 {
		confidence = 0.999
	}
	rep := &AgreementReport{Confidence: confidence}
	type dirSel struct {
		name   string
		series func(*HostRecord, string) []float64
	}
	dirs := []dirSel{
		{"forward", func(h *HostRecord, t string) []float64 { return h.FwdSeries[t] }},
		{"reverse", func(h *HostRecord, t string) []float64 { return h.RevSeries[t] }},
	}
	for _, d := range dirs {
		for i, a := range TestNames {
			for _, b := range TestNames[i+1:] {
				if d.name == "forward" && (a == "transfer" || b == "transfer") {
					continue // the transfer test has no forward direction
				}
				pair := AgreementPair{TestA: a, TestB: b, Direction: d.name}
				for _, h := range survey.Hosts {
					sa, sb := d.series(h, a), d.series(h, b)
					n := min(len(sa), len(sb))
					if n < 3 {
						continue
					}
					pair.Hosts++
					if stats.PairDifference(sa[:n], sb[:n], confidence).NullSupported {
						pair.NullOK++
					}
				}
				rep.Pairs = append(rep.Pairs, pair)
			}
		}
	}
	return rep
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
