package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosInducedDisagreement is the robustness acceptance criterion: at
// least one fault schedule must make the techniques measurably diverge.
// The RST-injecting middlebox is the canonical case — it tears down the
// measured connections the single/dual tests ride, collapsing their rates,
// while the SYN test's probes carry no data and sail through untouched —
// and the paired-difference test must reject the same-mean null for it.
func TestChaosInducedDisagreement(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{
		Scenarios:  []string{"rst-inject", "route-flap"},
		Replicas:   6,
		Samples:    12,
		Workers:    4,
		Confidence: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the static control measured and the adversarial cells exist.
	if c, ok := rep.Cell("", "single"); !ok || c.Targets == 0 {
		t.Fatalf("static control cell missing or empty: %+v", c)
	}
	rst, ok := rep.Cell("rst-inject", "syn")
	if !ok || rst.Targets == 0 {
		t.Fatalf("rst-inject/syn cell missing or empty: %+v", rst)
	}
	if rst.Topology != "" {
		t.Fatalf("rst-inject paired with topology %q, want p2p", rst.Topology)
	}
	if flap, ok := rep.Cell("route-flap", "single"); !ok || flap.Topology != "diamond" {
		t.Fatalf("route-flap not paired with the diamond topology: %+v", flap)
	}

	d := rep.Disagreements()
	if len(d) == 0 {
		var buf bytes.Buffer
		rep.WriteText(&buf)
		t.Fatalf("no fault schedule split the techniques apart:\n%s", buf.String())
	}
	t.Logf("technique-splitting schedules: %v", d)

	// The report must render, and name the divergence.
	var buf bytes.Buffer
	rep.WriteText(&buf)
	if !strings.Contains(buf.String(), "splitting the techniques apart") {
		t.Fatal("report omits the disagreement line")
	}
}

// TestChaosStaticControlAgrees pins the baseline: with no fault schedule,
// the three techniques measure the same swap-heavy path and the null must
// survive every pairing — so a disagreement in the adversarial cells is
// attributable to the schedule, not the harness.
func TestChaosStaticControlAgrees(t *testing.T) {
	rep, err := RunChaos(ChaosConfig{
		Scenarios:  []string{"header-rewrite"}, // rewriting only: benign to rates
		Replicas:   5,
		Samples:    12,
		Workers:    4,
		Confidence: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Agreement[""] {
		if p.Hosts > 0 && p.NullOK == 0 {
			t.Fatalf("static control rejected the null for %s vs %s (%s)", p.TestA, p.TestB, p.Direction)
		}
	}
}
