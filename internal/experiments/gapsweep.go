package experiments

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
)

// GapSweepConfig parameterizes E5 (Fig 7): reordering probability of
// minimum-sized packet pairs as a function of inter-packet spacing,
// measured with the dual connection test over a path whose reordering
// comes from per-packet striping across parallel links.
type GapSweepConfig struct {
	// FineStep and FineMax define the dense region (paper: 1µs steps
	// below 200µs).
	FineStep, FineMax time.Duration
	// CoarseStep and CoarseMax define the sparse tail (paper: 20µs steps
	// thereafter).
	CoarseStep, CoarseMax time.Duration
	// SamplesPerPoint is the pair count per spacing (paper: 1000).
	SamplesPerPoint int
	// Trunk overrides the striped-trunk model; nil uses a 2-way OC-12-
	// class trunk with bursty cross traffic.
	Trunk *netem.TrunkConfig
	// Seed drives everything.
	Seed uint64
	// Workers caps the parallel point runs (default 16). Each spacing's
	// simnet and prober derive from its point index alone, so the curve is
	// identical at any worker count.
	Workers int
}

// DefaultGapSweep follows the paper's sampling schedule. It is sized for
// the cmd/timedist tool; benchmarks use QuickGapSweep.
func DefaultGapSweep() GapSweepConfig {
	return GapSweepConfig{
		FineStep: time.Microsecond, FineMax: 200 * time.Microsecond,
		CoarseStep: 20 * time.Microsecond, CoarseMax: 500 * time.Microsecond,
		SamplesPerPoint: 1000,
		Seed:            77,
	}
}

// QuickGapSweep is a sparse, fast version preserving the curve's shape.
func QuickGapSweep() GapSweepConfig {
	return GapSweepConfig{
		FineStep: 25 * time.Microsecond, FineMax: 200 * time.Microsecond,
		CoarseStep: 100 * time.Microsecond, CoarseMax: 500 * time.Microsecond,
		SamplesPerPoint: 200,
		Seed:            77,
	}
}

// GapPoint is one spacing's measurement.
type GapPoint struct {
	Gap   time.Duration
	Rate  float64
	Valid int // samples contributing to the rate
}

// GapSweepReport is the Fig 7 curve.
type GapSweepReport struct {
	Points []GapPoint
}

// RateAt returns the measured rate at the point nearest the given gap.
func (rep *GapSweepReport) RateAt(gap time.Duration) float64 {
	best, bestDist := 0.0, time.Duration(1<<62)
	for _, p := range rep.Points {
		d := p.Gap - gap
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist, best = d, p.Rate
		}
	}
	return best
}

// WriteText prints the curve.
func (rep *GapSweepReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E5 (Fig 7) reordering probability vs inter-packet spacing (dual connection test)")
	fmt.Fprintf(w, "%10s %9s %7s\n", "gap", "rate", "n")
	for _, p := range rep.Points {
		fmt.Fprintf(w, "%10s %9.4f %7d\n", p.Gap, p.Rate, p.Valid)
	}
}

// gaps expands the sampling schedule.
func (cfg GapSweepConfig) gaps() []time.Duration {
	var out []time.Duration
	for g := time.Duration(0); g < cfg.FineMax; g += cfg.FineStep {
		out = append(out, g)
	}
	for g := cfg.FineMax; g <= cfg.CoarseMax; g += cfg.CoarseStep {
		out = append(out, g)
	}
	return out
}

// RunGapSweep executes E5. The forward path carries the striped trunk; the
// reverse path is clean so the forward measurement is unpolluted.
func RunGapSweep(cfg GapSweepConfig) (*GapSweepReport, error) {
	trunk := cfg.Trunk
	if trunk == nil {
		trunk = &netem.TrunkConfig{
			FanOut:         2,
			RateBps:        1_000_000_000,
			BurstProb:      0.15,
			MeanBurstBytes: 2500, // 20µs of drain time: the Fig 7 decay constant
		}
	}
	gaps := cfg.gaps()
	points := make([]GapPoint, len(gaps))
	errs := make([]error, len(gaps))
	sched := campaign.NewScheduler(campaign.SchedulerConfig{Workers: cfg.Workers})
	if err := sched.RunSpans(0, len(gaps),
		nil,
		func(_, i, _ int) error {
			n := simnet.New(simnet.Config{
				Seed:   cfg.Seed + uint64(i),
				Server: host.FreeBSD4(),
				// A fast probe access link: minimum-sized sample packets must
				// reach the trunk still back-to-back, or serialization delay
				// floors the effective gap (the §IV-C size effect itself).
				Forward: simnet.PathSpec{LinkRate: 1_000_000_000, Trunk: trunk},
			})
			prober := core.NewProber(n.Probe(), n.ServerAddr(), cfg.Seed+uint64(i)*31)
			res, err := prober.DualConnectionTest(core.DCTOptions{
				Samples: cfg.SamplesPerPoint,
				Gap:     gaps[i],
			})
			if err != nil {
				errs[i] = err
				return nil
			}
			f := res.Forward()
			points[i] = GapPoint{Gap: gaps[i], Rate: f.Rate(), Valid: f.Valid()}
			return nil
		},
		func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if errs[i] != nil {
					return errs[i]
				}
			}
			return nil
		},
	); err != nil {
		return nil, err
	}
	return &GapSweepReport{Points: points}, nil
}
