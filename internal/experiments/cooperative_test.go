package experiments

import (
	"strings"
	"testing"
)

func TestCooperativeAgreement(t *testing.T) {
	rep, err := RunCooperative(QuickCooperative())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Clean path: both methodologies read zero.
	if rep.Rows[0].DCTRate != 0 || rep.Rows[0].IPPMRate != 0 {
		t.Fatalf("clean row: %+v", rep.Rows[0])
	}
	// Rates grow with intensity under both methodologies.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].DCTRate <= rep.Rows[i-1].DCTRate {
			t.Errorf("DCT rate not increasing at row %d: %+v", i, rep.Rows)
		}
		if rep.Rows[i].IPPMRate <= rep.Rows[i-1].IPPMRate {
			t.Errorf("IPPM rate not increasing at row %d: %+v", i, rep.Rows)
		}
	}
	// The single-ended technique must track the cooperative ground truth
	// (binomial noise at n=150 allows some slack).
	if d := rep.MaxDisagreement(); d > 0.12 {
		t.Fatalf("max disagreement %.4f, want <= 0.12", d)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "E10") {
		t.Error("report text missing header")
	}
}
