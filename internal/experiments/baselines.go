package experiments

import (
	"fmt"
	"io"

	"reorder/internal/baseline"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/packet"
	"reorder/internal/simnet"
)

// BaselinesConfig parameterizes E7: the prior-art methods of §II run on a
// path with heavy reordering, reproducing both Bennett et al.'s findings
// (small bursts: most see reordering; large bursts: SACK metric grows) and
// Paxson's passive statistics, plus the direction-blindness critique.
type BaselinesConfig struct {
	// SwapProb is the pathological path's forward swap probability.
	SwapProb float64
	// SmallBursts and LargeBursts are the burst counts for the 5x56B and
	// 100x512B experiments.
	SmallBursts, LargeBursts int
	// Transfers is the number of sessions for the Paxson analysis.
	Transfers int
	// Seed drives everything.
	Seed uint64
}

// DefaultBaselines mirrors Bennett's setup on a heavy-reordering path.
func DefaultBaselines() BaselinesConfig {
	return BaselinesConfig{SwapProb: 0.35, SmallBursts: 50, LargeBursts: 10, Transfers: 20, Seed: 55}
}

// QuickBaselines is the benchmark-scale version.
func QuickBaselines() BaselinesConfig {
	return BaselinesConfig{SwapProb: 0.35, SmallBursts: 10, LargeBursts: 3, Transfers: 5, Seed: 55}
}

// BaselinesReport holds the E7 outcomes.
type BaselinesReport struct {
	// SmallBurstReordered is the fraction of 5-packet 56-byte bursts with
	// at least one reordering (Bennett: >90% on a pathological path).
	SmallBurstReordered float64
	// LargeBurstMeanSACK is the mean of the per-burst max-SACK-block
	// metric over 100-packet 512-byte bursts.
	LargeBurstMeanSACK float64
	// PaxsonSessions and PaxsonSessionsReordered give the session-level
	// statistic; PaxsonPacketRate the packet-level one.
	PaxsonSessions          int
	PaxsonSessionsReordered int
	PaxsonPacketRate        float64
}

// WriteText prints the report.
func (rep *BaselinesReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E7 prior-art baselines on a heavy-reordering path")
	fmt.Fprintf(w, "Bennett 5x56B bursts with >=1 reordering: %.0f%% (paper's reference: >90%%)\n",
		rep.SmallBurstReordered*100)
	fmt.Fprintf(w, "Bennett 100x512B bursts mean max SACK blocks: %.1f\n", rep.LargeBurstMeanSACK)
	fmt.Fprintf(w, "Paxson sessions with >=1 reordering: %d/%d; packet rate %.4f\n",
		rep.PaxsonSessionsReordered, rep.PaxsonSessions, rep.PaxsonPacketRate)
}

// RunBaselines executes E7.
func RunBaselines(cfg BaselinesConfig) (*BaselinesReport, error) {
	rep := &BaselinesReport{}

	// Bennett small bursts on the pathological path.
	n := simnet.New(simnet.Config{
		Seed: cfg.Seed, Server: host.FreeBSD4(),
		Forward: simnet.PathSpec{SwapProb: cfg.SwapProb},
		Reverse: simnet.PathSpec{SwapProb: cfg.SwapProb / 3},
	})
	small, err := baseline.BennettTest(n.Probe(), n.ServerAddr(), baseline.BennettOptions{
		Bursts: cfg.SmallBursts, BurstSize: 5, PayloadSize: 28,
	})
	if err != nil {
		return nil, err
	}
	rep.SmallBurstReordered = small.FractionReordered()

	// Bennett large bursts (100 x 512B) on the same scenario.
	large, err := baseline.BennettTest(n.Probe(), n.ServerAddr(), baseline.BennettOptions{
		Bursts: cfg.LargeBursts, BurstSize: 100, PayloadSize: 512 - 28,
	})
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, b := range large.Bursts {
		total += float64(b.SACKBlocks)
	}
	if len(large.Bursts) > 0 {
		rep.LargeBurstMeanSACK = total / float64(len(large.Bursts))
	}

	// Paxson passive analysis over repeated transfers with moderate
	// reverse-path reordering (his measurements were of TCP data flows).
	var packets, ooo int
	for i := 0; i < cfg.Transfers; i++ {
		prof := host.FreeBSD4()
		prof.TCP.ObjectSize = 16 << 10
		tn := simnet.New(simnet.Config{
			Seed: cfg.Seed + 100 + uint64(i), Server: prof,
			Reverse: simnet.PathSpec{SwapProb: cfg.SwapProb / 3},
		})
		prober := core.NewProber(tn.Probe(), tn.ServerAddr(), cfg.Seed+uint64(i))
		if _, err := prober.DataTransferTest(core.TransferOptions{}); err != nil {
			continue
		}
		flow := packet.FlowKey{
			Src: tn.ServerAddr(), Dst: tn.ProbeAddr(),
			SrcPort: 80, DstPort: 40000, Proto: packet.ProtoTCP,
		}
		pr := baseline.AnalyzeCapture(tn.ProbeIngress, flow)
		rep.PaxsonSessions++
		if pr.AnyReordering() {
			rep.PaxsonSessionsReordered++
		}
		packets += pr.DataPackets
		ooo += pr.OutOfOrder
	}
	if packets > 0 {
		rep.PaxsonPacketRate = float64(ooo) / float64(packets)
	}
	return rep, nil
}
