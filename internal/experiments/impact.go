package experiments

import (
	"fmt"
	"io"
	"time"

	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/sim"
	"reorder/internal/simnet"
	"reorder/internal/tcpsender"
)

// ImpactConfig parameterizes E9, an extension experiment quantifying the
// paper's motivation (§I): TCP's fast retransmit misreads reordering as
// loss and "dramatically reduces its throughput", and the adaptive-
// threshold proposals the paper cites ([3], [20]) are supposed to fix it.
// For each reordering intensity, one bulk transfer runs with classic Reno
// (dupthresh 3) and one with the adaptive sender; alongside, the dual
// connection test measures the path and the burst test predicts the
// spurious-retransmit exposure from the reordering-extent distribution —
// §IV-C's claim that the distribution "can predict how different protocols
// would be impacted" made concrete.
type ImpactConfig struct {
	// Jitters are the per-packet delay spreads that create (deep,
	// loss-free) reordering on the data path.
	Jitters []time.Duration
	// Bytes per transfer.
	Bytes int
	// Repeats averages each cell over several differently seeded
	// transfers (default 3).
	Repeats int
	// Seed drives everything.
	Seed uint64
}

// DefaultImpact returns the full-scale configuration.
func DefaultImpact() ImpactConfig {
	return ImpactConfig{
		Jitters: []time.Duration{0, 500 * time.Microsecond, 1 * time.Millisecond,
			2 * time.Millisecond, 4 * time.Millisecond},
		Bytes:   512 << 10,
		Repeats: 3,
		Seed:    99,
	}
}

// QuickImpact is the benchmark-scale version.
func QuickImpact() ImpactConfig {
	return ImpactConfig{
		Jitters: []time.Duration{0, 2 * time.Millisecond},
		Bytes:   128 << 10,
		Repeats: 1,
		Seed:    99,
	}
}

// ImpactRow is one reordering intensity's outcome.
type ImpactRow struct {
	Jitter time.Duration
	// MeasuredRate is the packet-pair reordering rate the dual connection
	// test reports for this path.
	MeasuredRate float64
	// PredictedDeepFrac is the fraction of packets 3-reordered in a burst
	// test train — the exposure a dupthresh-3 sender has on this path.
	PredictedDeepFrac float64
	// Reno and Adaptive are the two senders' results.
	Reno, Adaptive tcpsender.Stats
}

// ImpactReport aggregates the sweep.
type ImpactReport struct {
	Rows []ImpactRow
}

// WriteText prints the table.
func (rep *ImpactReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, "E9 (extension) protocol impact of reordering: Reno vs adaptive dupthresh")
	fmt.Fprintf(w, "%8s %9s %9s | %10s %8s %8s | %10s %8s %8s %6s\n",
		"jitter", "pairrate", "3reorder",
		"reno-bps", "fastrtx", "halvings",
		"adapt-bps", "fastrtx", "halvings", "thresh")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%8s %9.4f %9.4f | %10.0f %8d %8d | %10.0f %8d %8d %6d\n",
			r.Jitter, r.MeasuredRate, r.PredictedDeepFrac,
			r.Reno.Throughput(), r.Reno.FastRetransmits, r.Reno.CwndHalvings,
			r.Adaptive.Throughput(), r.Adaptive.FastRetransmits, r.Adaptive.CwndHalvings,
			r.Adaptive.FinalDupThresh)
	}
}

// impactPath is the data path: fast access link so jitter displaces many
// positions, no loss — all damage comes from reordering.
func impactPath(jitter time.Duration) simnet.PathSpec {
	return simnet.PathSpec{LinkRate: 100_000_000, Jitter: jitter}
}

// RunImpact executes E9.
func RunImpact(cfg ImpactConfig) (*ImpactReport, error) {
	if len(cfg.Jitters) == 0 {
		cfg = DefaultImpact()
	}
	rep := &ImpactReport{}
	for i, jitter := range cfg.Jitters {
		seed := cfg.Seed + uint64(i)*1000
		row := ImpactRow{Jitter: jitter}

		// Measure the path with the paper's tools first.
		mn := simnet.New(simnet.Config{Seed: seed, Server: host.FreeBSD4(), Forward: impactPath(jitter)})
		prober := core.NewProber(mn.Probe(), mn.ServerAddr(), seed^0xafe)
		if res, err := prober.DualConnectionTest(core.DCTOptions{Samples: 200}); err == nil {
			row.MeasuredRate = res.Forward().Rate()
		}
		if burst, err := prober.BurstTest(core.BurstOptions{BurstSize: 10, Bursts: 30, Gap: 120 * time.Microsecond}); err == nil {
			f := burst.ForwardAggregate()
			if f.Received > 0 {
				row.PredictedDeepFrac = float64(f.SpuriousFastRetransmits(3)) / float64(f.Received)
			}
		}

		// Then run the two senders over identically seeded paths,
		// averaging each over the configured repeats.
		repeats := cfg.Repeats
		if repeats < 1 {
			repeats = 1
		}
		for _, adaptive := range []bool{false, true} {
			var agg tcpsender.Stats
			for r := 0; r < repeats; r++ {
				n := simnet.New(simnet.Config{Seed: seed + uint64(r), Server: host.FreeBSD4(), Forward: impactPath(jitter)})
				s := tcpsender.New(n.Loop, tcpsender.Config{Bytes: cfg.Bytes, Adaptive: adaptive},
					n.ProbeAddr(), n.ServerAddr(), n.IDs, sim.NewRand(seed^0x5e4d+uint64(r), 7), nil)
				s.SetOutput(n.AttachEndpoint(s))
				s.Start()
				n.Loop.RunUntil(sim.Time(10 * time.Minute))
				if !s.Done() {
					return nil, fmt.Errorf("impact: transfer at jitter %v (adaptive=%v) did not finish", jitter, adaptive)
				}
				st := s.Stats()
				agg.BytesAcked += st.BytesAcked
				agg.Elapsed += st.Elapsed
				agg.FastRetransmits += st.FastRetransmits
				agg.SpuriousFast += st.SpuriousFast
				agg.Timeouts += st.Timeouts
				agg.CwndHalvings += st.CwndHalvings
				if st.FinalDupThresh > agg.FinalDupThresh {
					agg.FinalDupThresh = st.FinalDupThresh
				}
			}
			if adaptive {
				row.Adaptive = agg
			} else {
				row.Reno = agg
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
