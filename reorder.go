// Package reorder is the public facade of this repository: a library for
// measuring one-way packet reordering to and from arbitrary TCP servers,
// reproducing the techniques of Bellardo & Savage, "Measuring Packet
// Reordering" (IMC 2002).
//
// The measurement engine lives in internal/core and is re-exported here;
// the simulated network substrate (internal/simnet and friends) is
// re-exported so downstream users can build scenarios without reaching
// into internal packages. A typical session:
//
//	net := reorder.NewSimNet(reorder.SimConfig{
//	    Seed:    1,
//	    Server:  reorder.FreeBSD4(),
//	    Forward: reorder.PathSpec{SwapProb: 0.05},
//	})
//	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 2)
//	res, err := p.SingleConnectionTest(reorder.SCTOptions{Samples: 15})
//	...
//	fmt.Printf("forward reordering: %.2f%%\n", res.Forward().Rate()*100)
//
// On a Linux host with raw-socket privileges and a network vantage point,
// the same Prober runs over internal/livewire instead of the simulator.
package reorder

import (
	"reorder/internal/campaign"
	"reorder/internal/core"
	"reorder/internal/host"
	"reorder/internal/netem"
	"reorder/internal/simnet"
	"reorder/internal/stats"
)

// Measurement engine (§III of the paper).
type (
	// Prober runs the four measurement techniques against one target.
	Prober = core.Prober
	// Transport is the raw-packet interface a Prober drives.
	Transport = core.Transport
	// Result is one measurement's outcome.
	Result = core.Result
	// Sample is one packet-pair classification.
	Sample = core.Sample
	// Verdict classifies one direction of one sample.
	Verdict = core.Verdict
	// DirCount aggregates verdicts for one direction.
	DirCount = core.DirCount

	// SCTOptions configures the single connection test.
	SCTOptions = core.SCTOptions
	// DCTOptions configures the dual connection test.
	DCTOptions = core.DCTOptions
	// SYNOptions configures the SYN test.
	SYNOptions = core.SYNOptions
	// TransferOptions configures the TCP data transfer test.
	TransferOptions = core.TransferOptions
	// IPIDCheckOptions configures standalone IPID prevalidation.
	IPIDCheckOptions = core.IPIDCheckOptions
	// BurstOptions configures the k-packet burst generalization of the
	// dual connection test.
	BurstOptions = core.BurstOptions
	// BurstResult is a burst test's outcome; its aggregates are
	// metrics.Report values with reordering extents and n-reordering.
	BurstResult = core.BurstResult
	// BurstSample is one train's outcome.
	BurstSample = core.BurstSample
	// GapSweepOptions configures Prober.GapSweep, the §IV-C time-domain
	// distribution measurement.
	GapSweepOptions = core.GapSweepOptions
	// GapDistribution is a measured reordering-vs-spacing curve.
	GapDistribution = core.GapDistribution
	// GapRate is one spacing's measurement.
	GapRate = core.GapRate
)

// Verdict values.
const (
	VerdictUnknown   = core.VerdictUnknown
	VerdictInOrder   = core.VerdictInOrder
	VerdictReordered = core.VerdictReordered
	VerdictLost      = core.VerdictLost
	VerdictAmbiguous = core.VerdictAmbiguous
)

// Errors.
var (
	ErrHandshake    = core.ErrHandshake
	ErrIPIDUnusable = core.ErrIPIDUnusable
	ErrNoData       = core.ErrNoData
)

// NewProber returns a prober for target over the given transport.
var NewProber = core.NewProber

// Simulated substrate.
type (
	// SimNet is a wired-up simulated scenario.
	SimNet = simnet.Net
	// SimConfig describes a scenario.
	SimConfig = simnet.Config
	// PathSpec describes one direction's impairments.
	PathSpec = simnet.PathSpec
	// TrunkConfig describes a striped parallel trunk (the paper's §IV-C
	// reordering mechanism).
	TrunkConfig = netem.TrunkConfig
	// MultiPathConfig describes per-packet spraying over unequal paths.
	MultiPathConfig = netem.MultiPathConfig
	// ARQConfig describes a lossy layer-2 link with retransmission.
	ARQConfig = netem.ARQConfig
	// FrameView is the decoded form a zero-copy frame carries through the
	// simulated wire (see PathSpec.Corrupt for what forces wire bytes).
	FrameView = netem.FrameView
	// HostProfile describes a remote stack's implementation behaviour.
	HostProfile = host.Profile
)

// NewSimNet builds a simulated scenario.
func NewSimNet(cfg SimConfig) *SimNet { return simnet.New(cfg) }

// Host profiles (the §IV-B population).
var (
	FreeBSD4     = host.FreeBSD4
	Linux22      = host.Linux22
	Linux24      = host.Linux24
	OpenBSD3     = host.OpenBSD3
	Solaris8     = host.Solaris8
	Windows2000  = host.Windows2000
	SpecStack    = host.SpecStack
	DualRSTStack = host.DualRSTStack
	HostCatalog  = host.Catalog
)

// Campaign orchestration (internal/campaign): concurrent measurement
// campaigns over thousands of targets with streaming sinks and
// checkpoint/resume — the production-scale generalization of the §IV-B
// survey.
type (
	// CampaignConfig parameterizes a campaign run.
	CampaignConfig = campaign.Config
	// CampaignTarget is one unit of campaign work.
	CampaignTarget = campaign.Target
	// CampaignResult is the streamed per-target record.
	CampaignResult = campaign.TargetResult
	// CampaignSummary is the merged outcome of a campaign.
	CampaignSummary = campaign.Summary
	// CampaignEnumSpec describes a cross-product target enumeration.
	CampaignEnumSpec = campaign.EnumSpec
	// CampaignImpairment is a named, seedable path condition.
	CampaignImpairment = campaign.Impairment
	// Scheduler is the bounded worker pool with retry/backoff, rate
	// limiting and in-order completion delivery.
	Scheduler = campaign.Scheduler
	// SchedulerConfig tunes the worker pool.
	SchedulerConfig = campaign.SchedulerConfig
	// Aggregator folds per-target results via lock-free per-worker shards
	// of fixed-bin streaming histograms: constant memory in target count.
	Aggregator = campaign.Aggregator
	// CampaignRateSummary is one streamed statistic's reduction: exact
	// N/Min/Max plus histogram-interpolated Mean and P50/P90/P99.
	CampaignRateSummary = campaign.RateSummary
	// Sink is a streaming consumer of per-target campaign results.
	Sink = campaign.Sink
	// JSONLSink streams results as one JSON object per line.
	JSONLSink = campaign.JSONLSink
	// CSVSink streams results as CSV rows.
	CSVSink = campaign.CSVSink
	// CSVRowEncoder renders results to CSV row bytes byte-identically to
	// CSVSink, for batched (one-Write-per-span) emission pipelines.
	CSVRowEncoder = campaign.CSVRowEncoder
	// CampaignCheckpoint records durable campaign progress.
	CampaignCheckpoint = campaign.Checkpoint
)

// Campaign entry points.
var (
	// RunCampaign executes a campaign and returns the merged summary.
	RunCampaign = campaign.Run
	// EnumerateTargets expands a cross product into a target list.
	EnumerateTargets = campaign.Enumerate
	// LoadTargets parses a targets file.
	LoadTargets = campaign.LoadTargets
	// ProbeCampaignTarget runs one target's measurement hermetically.
	ProbeCampaignTarget = campaign.ProbeTarget
	// NewScheduler returns a configured worker pool.
	NewScheduler = campaign.NewScheduler
	// NewCSVRowEncoder returns a worker-side CSV row encoder.
	NewCSVRowEncoder = campaign.NewCSVRowEncoder
	// CampaignProfiles lists the enumerable host profile names.
	CampaignProfiles = campaign.Profiles
	// CampaignImpairments lists the named path impairments.
	CampaignImpairments = campaign.Impairments
)

// Streaming statistics (internal/stats): the constant-memory histogram
// machinery the campaign aggregator shards are built from, exported so
// downstream pipelines can reduce their own JSONL streams the same way.
type (
	// Histogram is a fixed-bin streaming histogram: mergeable shards,
	// bin-interpolated quantiles, CDF points, constant memory.
	Histogram = stats.Histogram
	// CDFPoint is one (x, P(X<=x)) plot coordinate.
	CDFPoint = stats.Point
)

// Histogram constructors.
var (
	// NewHistogram builds a histogram over ascending bin edges.
	NewHistogram = stats.NewHistogram
	// UniformEdges returns equally spaced bin edges over [lo, hi].
	UniformEdges = stats.UniformEdges
	// LogEdges returns geometrically spaced bin edges over [lo, hi].
	LogEdges = stats.LogEdges
)
