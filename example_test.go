package reorder_test

import (
	"fmt"
	"time"

	"reorder"
)

// The single connection test against a path that swaps 10% of adjacent
// packet pairs on the way to the server. Everything is seeded, so the
// output is exact.
func Example_singleConnectionTest() {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:    2002,
		Server:  reorder.FreeBSD4(),
		Forward: reorder.PathSpec{SwapProb: 0.10},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 1)
	res, err := p.SingleConnectionTest(reorder.SCTOptions{Samples: 100, Reversed: true})
	if err != nil {
		panic(err)
	}
	f := res.Forward()
	fmt.Printf("forward: %d reordered of %d valid\n", f.Reordered, f.Valid())
	// Output:
	// forward: 10 reordered of 100 valid
}

// IPID prevalidation rules out a host whose stack randomizes the
// identification field, exactly as §III-C prescribes.
func Example_ipidPrevalidation() {
	net := reorder.NewSimNet(reorder.SimConfig{Seed: 7, Server: reorder.OpenBSD3()})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 2)
	rep, err := p.ValidateIPID(reorder.IPIDCheckOptions{Probes: 16})
	if err != nil {
		panic(err)
	}
	fmt.Printf("usable for the dual connection test: %v\n", rep.Usable())
	// Output:
	// usable for the dual connection test: false
}

// Sweeping the inter-packet gap over a striped trunk produces the §IV-C
// time-domain distribution; DecayGap answers "how much pacing makes the
// reordering irrelevant".
func Example_gapSweep() {
	net := reorder.NewSimNet(reorder.SimConfig{
		Seed:   11,
		Server: reorder.FreeBSD4(),
		Forward: reorder.PathSpec{
			LinkRate: 1_000_000_000,
			Trunk:    &reorder.TrunkConfig{FanOut: 2, RateBps: 1_000_000_000, BurstProb: 0.3, MeanBurstBytes: 2500},
		},
	})
	p := reorder.NewProber(net.Probe(), net.ServerAddr(), 12)
	dist, err := p.GapSweep(reorder.GapSweepOptions{
		Gaps:          []time.Duration{0, 100 * time.Microsecond, 300 * time.Microsecond},
		SamplesPerGap: 500,
	})
	if err != nil {
		panic(err)
	}
	gap, _ := dist.DecayGap(0.01)
	fmt.Printf("back-to-back rate > gap-300us rate: %v\n", dist.ForwardAt(0) > dist.ForwardAt(300*time.Microsecond))
	fmt.Printf("pacing that suppresses reordering below 1%%: %v\n", gap)
	// Output:
	// back-to-back rate > gap-300us rate: true
	// pacing that suppresses reordering below 1%: 100µs
}
